"""Netlist construction and validation."""

import pytest

from repro.hardware import Netlist


class TestConstruction:
    def test_inputs_and_gates(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        out = nl.add_gate("AND2", a, b)
        nl.add_output("y", out)
        assert nl.stats().startswith("netlist: 1 gates")

    def test_duplicate_input_name(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_input("a")

    def test_duplicate_output_name(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_output("y", a)
        with pytest.raises(ValueError):
            nl.add_output("y", a)

    def test_wrong_pin_count(self):
        nl = Netlist()
        a = nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_gate("AND2", a)

    def test_unknown_cell(self):
        nl = Netlist()
        a = nl.add_input("a")
        with pytest.raises(KeyError):
            nl.add_gate("NAND7", a)

    def test_undriven_net_rejected(self):
        nl = Netlist()
        dangling = nl.new_net()
        with pytest.raises(ValueError, match="driver"):
            nl.add_gate("INV", dangling)

    def test_nonexistent_net_rejected(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            nl.add_gate("INV", 42)

    def test_dff_via_add_gate_rejected(self):
        nl = Netlist()
        a = nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_gate("DFF", a)

    def test_const(self):
        nl = Netlist()
        one = nl.add_const(1)
        nl.add_output("y", one)
        with pytest.raises(ValueError):
            nl.add_const(2)


class TestFlops:
    def test_add_flop(self):
        nl = Netlist()
        a = nl.add_input("a")
        q = nl.add_flop(a)
        nl.add_output("q", q)
        assert len(nl.flops) == 1

    def test_placeholder_connect(self):
        nl = Netlist()
        q = nl.add_flop_placeholder()
        inverted = nl.add_gate("INV", q)
        nl.connect_flop(q, inverted)
        assert nl.levelize()  # no error: feedback cut by the flop

    def test_unconnected_placeholder_rejected_at_levelize(self):
        nl = Netlist()
        nl.add_flop_placeholder()
        with pytest.raises(ValueError, match="unconnected"):
            nl.levelize()

    def test_double_connect_rejected(self):
        nl = Netlist()
        q = nl.add_flop_placeholder()
        inv = nl.add_gate("INV", q)
        nl.connect_flop(q, inv)
        with pytest.raises(ValueError):
            nl.connect_flop(q, inv)

    def test_connect_unknown_q(self):
        nl = Netlist()
        a = nl.add_input("a")
        with pytest.raises(ValueError):
            nl.connect_flop(a, a)

    def test_bad_init(self):
        nl = Netlist()
        a = nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_flop(a, init=2)


class TestLevelize:
    def test_orders_dependencies(self):
        nl = Netlist()
        a = nl.add_input("a")
        x = nl.add_gate("INV", a)
        y = nl.add_gate("INV", x)
        order = nl.levelize()
        assert order[0].output == x
        assert order[1].output == y

    def test_cell_counts(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_gate("AND2", a, b)
        nl.add_gate("AND2", a, b)
        nl.add_flop(a)
        counts = nl.cell_counts()
        assert counts["AND2"] == 2
        assert counts["DFF"] == 1
