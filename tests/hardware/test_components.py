"""Parametric component builders."""

import numpy as np
import pytest

from repro.hdc.lfsr import LFSR, MAXIMAL_TAPS
from repro.hardware import Netlist, Simulator
from repro.hardware.components import (
    and_tree,
    binary_comparator_ge,
    build_lfsr,
    constant_bus,
    equality_comparator,
    incrementer,
    match_constant_mask,
    or_tree,
    register_bus,
    sticky_latch,
    sync_counter,
)


def read_bus(sim: Simulator, bus: list[int]) -> int:
    return sum(sim.value(net) << i for i, net in enumerate(bus))


class TestTrees:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 11])
    def test_and_tree(self, n):
        nl = Netlist()
        nets = [nl.add_input(f"i{k}") for k in range(n)]
        nl.add_output("y", and_tree(nl, nets))
        sim = Simulator(nl)
        assert sim.evaluate({f"i{k}": 1 for k in range(n)})["y"] == 1
        if n > 1:
            values = {f"i{k}": 1 for k in range(n)}
            values["i0"] = 0
            assert sim.evaluate(values)["y"] == 0

    @pytest.mark.parametrize("n", [1, 2, 3, 7])
    def test_or_tree(self, n):
        nl = Netlist()
        nets = [nl.add_input(f"i{k}") for k in range(n)]
        nl.add_output("y", or_tree(nl, nets))
        sim = Simulator(nl)
        assert sim.evaluate({f"i{k}": 0 for k in range(n)})["y"] == 0
        values = {f"i{k}": 0 for k in range(n)}
        values[f"i{n - 1}"] = 1
        assert sim.evaluate(values)["y"] == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            and_tree(Netlist(), [])


class TestConstantBus:
    def test_value(self):
        nl = Netlist()
        bus = constant_bus(nl, 0b1010, 4)
        for i, net in enumerate(bus):
            nl.add_output(f"b{i}", net)
        sim = Simulator(nl)
        sim.evaluate()
        assert read_bus(sim, bus) == 0b1010

    def test_too_wide(self):
        with pytest.raises(ValueError):
            constant_bus(Netlist(), 16, 4)


class TestIncrementer:
    @pytest.mark.parametrize("value", [0, 1, 5, 14, 15])
    def test_plus_one_mod_16(self, value):
        nl = Netlist()
        bus = [nl.add_input(f"a{i}") for i in range(4)]
        out = incrementer(nl, bus)
        for i, net in enumerate(out):
            nl.add_output(f"y{i}", net)
        sim = Simulator(nl)
        sim.evaluate({f"a{i}": (value >> i) & 1 for i in range(4)})
        assert read_bus(sim, out) == (value + 1) % 16


class TestSyncCounter:
    def test_counts_every_cycle(self):
        nl = Netlist()
        bus = sync_counter(nl, 4)
        for i, net in enumerate(bus):
            nl.add_output(f"q{i}", net)
        sim = Simulator(nl)
        seen = []
        for _ in range(20):
            sim.step()
            seen.append(read_bus(sim, bus))
        assert seen == [(k + 1) % 16 for k in range(20)]  # wraps at 2^4

    def test_enable_gates_counting(self):
        nl = Netlist()
        enable = nl.add_input("en")
        bus = sync_counter(nl, 4, enable=enable)
        for i, net in enumerate(bus):
            nl.add_output(f"q{i}", net)
        sim = Simulator(nl)
        pattern = [1, 0, 1, 1, 0, 0, 1]
        for bit in pattern:
            sim.step({"en": bit})
        assert read_bus(sim, bus) == sum(pattern)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            sync_counter(Netlist(), 0)


class TestComparators:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_ge_exhaustive(self, width):
        nl = Netlist()
        a = [nl.add_input(f"a{i}") for i in range(width)]
        b = [nl.add_input(f"b{i}") for i in range(width)]
        nl.add_output("ge", binary_comparator_ge(nl, a, b))
        sim = Simulator(nl)
        for x in range(1 << width):
            for y in range(1 << width):
                vec = {f"a{i}": (x >> i) & 1 for i in range(width)}
                vec.update({f"b{i}": (y >> i) & 1 for i in range(width)})
                assert sim.evaluate(vec)["ge"] == (1 if x >= y else 0), (x, y)

    def test_equality_exhaustive(self):
        width = 3
        nl = Netlist()
        a = [nl.add_input(f"a{i}") for i in range(width)]
        b = [nl.add_input(f"b{i}") for i in range(width)]
        nl.add_output("eq", equality_comparator(nl, a, b))
        sim = Simulator(nl)
        for x in range(8):
            for y in range(8):
                vec = {f"a{i}": (x >> i) & 1 for i in range(width)}
                vec.update({f"b{i}": (y >> i) & 1 for i in range(width)})
                assert sim.evaluate(vec)["eq"] == (1 if x == y else 0)

    def test_width_mismatch(self):
        nl = Netlist()
        a = [nl.add_input("a0")]
        b = [nl.add_input("b0"), nl.add_input("b1")]
        with pytest.raises(ValueError):
            binary_comparator_ge(nl, a, b)
        with pytest.raises(ValueError):
            equality_comparator(nl, a, b)


class TestMaskingLogic:
    def test_fires_first_at_threshold(self):
        # Counting up, the masked AND fires exactly when the counter first
        # reaches the threshold.
        threshold = 6  # 0b110
        nl = Netlist()
        bus = sync_counter(nl, 4)
        fire = match_constant_mask(nl, bus, threshold)
        nl.add_output("fire", fire)
        sim = Simulator(nl)
        fired_at = []
        for cycle in range(1, 16):
            out = sim.step()
            if out["fire"]:
                fired_at.append(read_bus(sim, bus))
        assert fired_at[0] == threshold

    def test_single_bit_threshold(self):
        nl = Netlist()
        bus = sync_counter(nl, 3)
        nl.add_output("fire", match_constant_mask(nl, bus, 4))
        sim = Simulator(nl)
        values = [(sim.step()["fire"], read_bus(sim, bus)) for _ in range(7)]
        for fire, count in values:
            assert fire == (1 if count >= 4 else 0)

    def test_bad_threshold(self):
        nl = Netlist()
        bus = sync_counter(nl, 3)
        with pytest.raises(ValueError):
            match_constant_mask(nl, bus, 0)
        with pytest.raises(ValueError):
            match_constant_mask(nl, bus, 8)


class TestStickyLatch:
    def test_latches_first_one(self):
        nl = Netlist()
        signal = nl.add_input("s")
        nl.add_output("q", sticky_latch(nl, signal))
        sim = Simulator(nl)
        outs = [sim.step({"s": bit})["q"] for bit in (0, 0, 1, 0, 0)]
        assert outs == [0, 0, 1, 1, 1]


class TestLfsrNetlist:
    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_matches_software_model(self, width):
        nl = Netlist()
        state = build_lfsr(nl, width, MAXIMAL_TAPS[width])
        for i, net in enumerate(state):
            nl.add_output(f"s{i}", net)
        sim = Simulator(nl)
        software = LFSR(width)  # all-ones seed matches flop init=1
        for _ in range(50):
            sim.step()
            software.next_state()
            assert read_bus(sim, state) == software.state

    def test_bad_taps(self):
        with pytest.raises(ValueError):
            build_lfsr(Netlist(), 4, (5,))


class TestRegisterBus:
    def test_delays_by_one_cycle(self):
        nl = Netlist()
        d = [nl.add_input("d0"), nl.add_input("d1")]
        q = register_bus(nl, d)
        for i, net in enumerate(q):
            nl.add_output(f"q{i}", net)
        sim = Simulator(nl)
        sim.step({"d0": 1, "d1": 0})
        assert (sim.value(q[0]), sim.value(q[1])) == (1, 0)
