"""The paper's datapath circuits: functional correctness at gate level."""

import numpy as np
import pytest

from repro.hardware import Simulator
from repro.hardware.circuits import (
    UstFetchModel,
    bit_stream_stimulus,
    build_binary_comparator,
    build_comparator_binarizer,
    build_counter_comparator_generator,
    build_lfsr_hv_generator,
    build_masking_binarizer,
    build_unary_comparator,
    binary_comparator_stimulus,
    counter_generator_stream_energy_fj,
    lfsr_generator_stimulus,
    unary_comparator_stimulus,
)
from repro.hdc.lfsr import LFSR
from repro.unary import compare_values_via_unary


class TestUnaryComparatorCircuit:
    @pytest.mark.parametrize("n", [2, 7, 16])
    def test_matches_functional_model(self, n):
        sim = Simulator(build_unary_comparator(n))
        for a in range(n + 1):
            for b in range(n + 1):
                vec = unary_comparator_stimulus(n, [(a, b)])[0]
                assert sim.step(vec)["ge"] == int(compare_values_via_unary(a, b, n))

    def test_stimulus_validation(self):
        with pytest.raises(ValueError):
            unary_comparator_stimulus(4, [(5, 0)])

    def test_bad_width(self):
        with pytest.raises(ValueError):
            build_unary_comparator(0)


class TestBinaryComparatorCircuit:
    @pytest.mark.parametrize("m", [1, 3, 5])
    def test_exhaustive(self, m):
        sim = Simulator(build_binary_comparator(m))
        for a in range(1 << m):
            for b in range(1 << m):
                vec = binary_comparator_stimulus(m, [(a, b)])[0]
                assert sim.step(vec)["ge"] == (1 if a >= b else 0)

    def test_stimulus_validation(self):
        with pytest.raises(ValueError):
            binary_comparator_stimulus(3, [(8, 0)])

    def test_bad_width(self):
        with pytest.raises(ValueError):
            build_binary_comparator(0)


class TestCounterComparatorGenerator:
    @pytest.mark.parametrize("value", [0, 5, 9, 15])
    def test_emits_unary_stream(self, value):
        m = 4
        sim = Simulator(build_counter_comparator_generator(m))
        vector = {f"v{i}": (value >> i) & 1 for i in range(m)}
        # Output convention: bit = value > counter, read pre-step.
        bits = []
        for _ in range(1 << m):
            bits.append(sim.evaluate(vector)["bit"])
            sim.step(vector)
        assert sum(bits) == value
        assert bits == sorted(bits, reverse=True)  # leading ones

    def test_stream_energy_positive_and_value_dependent(self):
        low = counter_generator_stream_energy_fj(4, 0)
        high = counter_generator_stream_energy_fj(4, 8)
        assert low > 0
        assert high > 0

    def test_value_validation(self):
        with pytest.raises(ValueError):
            counter_generator_stream_energy_fj(4, 16)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            build_counter_comparator_generator(0)


class TestUstFetchModel:
    def test_memory_bits(self):
        assert UstFetchModel(16).memory_bits == 256

    def test_fetch_energy_positive(self):
        model = UstFetchModel(16)
        assert model.average_fetch_energy_fj(samples=16) > 0

    def test_fetch_cheaper_than_generation(self):
        fetch = UstFetchModel(16).average_fetch_energy_fj(samples=32)
        stream = counter_generator_stream_energy_fj(4, 9)
        assert fetch < stream / 5

    def test_code_validation(self):
        with pytest.raises(ValueError):
            UstFetchModel(16).fetch_sequence_energy_fj([16])

    def test_bad_levels(self):
        with pytest.raises(ValueError):
            UstFetchModel(1)


class TestBinarizers:
    @pytest.mark.parametrize("builder", [build_masking_binarizer,
                                         build_comparator_binarizer])
    @pytest.mark.parametrize("ones_fraction,expected", [(0.8, 1), (0.2, 0)])
    def test_sign_decision(self, builder, ones_fraction, expected):
        h = 64
        sim = Simulator(builder(h))
        out = sim.run(bit_stream_stimulus(h, ones_fraction, seed=3))[-1]
        assert out["sign"] == expected

    def test_exact_threshold_fires(self):
        h = 16
        sim = Simulator(build_masking_binarizer(h))
        stream = [{"bit": 1}] * (h // 2) + [{"bit": 0}] * (h // 2)
        assert sim.run(stream)[-1]["sign"] == 1

    def test_one_below_threshold_does_not_fire(self):
        h = 16
        sim = Simulator(build_masking_binarizer(h))
        stream = [{"bit": 1}] * (h // 2 - 1) + [{"bit": 0}] * (h // 2 + 1)
        assert sim.run(stream)[-1]["sign"] == 0

    def test_designs_agree_randomly(self):
        h = 96
        for seed in range(4):
            stim = bit_stream_stimulus(h, 0.5, seed=seed)
            masking = Simulator(build_masking_binarizer(h)).run(stim)[-1]["sign"]
            comparator = Simulator(build_comparator_binarizer(h)).run(stim)[-1]["sign"]
            assert masking == comparator

    def test_stimulus_validation(self):
        with pytest.raises(ValueError):
            bit_stream_stimulus(8, 1.5)

    def test_bad_h(self):
        with pytest.raises(ValueError):
            build_masking_binarizer(1)
        with pytest.raises(ValueError):
            build_comparator_binarizer(1)


class TestLfsrHvGenerator:
    def test_state_matches_software(self):
        netlist = build_lfsr_hv_generator(width=8, compare_bits=4)
        sim = Simulator(netlist)
        software = LFSR(8)
        stim = lfsr_generator_stimulus(4, 7, 30)
        for vector in stim:
            sim.step(vector)
            software.next_state()
            hw_state = sum(
                sim.outputs()[f"state{i}"] << i for i in range(8)
            )
            assert hw_state == software.state

    def test_bit_is_threshold_compare(self):
        netlist = build_lfsr_hv_generator(width=8, compare_bits=8)
        sim = Simulator(netlist)
        software = LFSR(8)
        threshold = 100
        for vector in lfsr_generator_stimulus(8, threshold, 20):
            out = sim.step(vector)
            expected = int(software.next_state() >= threshold)
            assert out["bit"] == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            build_lfsr_hv_generator(width=21)
        with pytest.raises(ValueError):
            build_lfsr_hv_generator(width=8, compare_bits=9)
        with pytest.raises(ValueError):
            lfsr_generator_stimulus(4, 16, 5)
