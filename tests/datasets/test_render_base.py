"""Rendering toolkit and the common dataset container."""

import numpy as np
import pytest

from repro.datasets.base import ImageDataset, stratified_indices
from repro.datasets.render import (
    add_gaussian_noise,
    affine_warp,
    box_blur,
    canvas,
    draw_ellipse,
    draw_polyline,
    draw_rect,
    draw_segment,
    normalize_to_uint8,
)


class TestPrimitives:
    def test_canvas(self):
        img = canvas(8, value=0.5)
        assert img.shape == (8, 8)
        assert (img == 0.5).all()
        with pytest.raises(ValueError):
            canvas(0)

    def test_segment_stamps_pixels(self):
        img = canvas(16)
        draw_segment(img, (0.2, 0.5), (0.8, 0.5), thickness=0.1)
        assert img.sum() > 0
        assert img[8, 8] == 1.0       # centre of the stroke
        assert img[1, 1] == 0.0       # far corner untouched

    def test_degenerate_segment_is_dot(self):
        img = canvas(16)
        draw_segment(img, (0.5, 0.5), (0.5, 0.5), thickness=0.2)
        assert img[8, 8] == 1.0

    def test_polyline_connects(self):
        img = canvas(16)
        draw_polyline(img, [(0.2, 0.2), (0.8, 0.2), (0.8, 0.8)], thickness=0.1)
        assert img[3, 8] > 0   # top edge
        assert img[8, 12] > 0  # right edge

    def test_ellipse_filled_and_ring(self):
        filled = canvas(32)
        draw_ellipse(filled, (0.5, 0.5), (0.3, 0.2))
        assert filled[16, 16] == 1.0
        ring = canvas(32)
        draw_ellipse(ring, (0.5, 0.5), (0.3, 0.3), filled=False, edge=0.05)
        assert ring[16, 16] == 0.0
        assert ring.sum() > 0

    def test_ellipse_bad_radii(self):
        with pytest.raises(ValueError):
            draw_ellipse(canvas(8), (0.5, 0.5), (0.0, 0.1))

    def test_rect(self):
        img = canvas(16)
        draw_rect(img, (0.25, 0.25), (0.75, 0.75))
        assert img[8, 8] == 1.0
        assert img[0, 0] == 0.0

    def test_noise_clipped(self):
        rng = np.random.default_rng(0)
        img = add_gaussian_noise(canvas(16, 0.5), rng, sigma=2.0)
        assert img.min() >= 0.0
        assert img.max() <= 1.0

    def test_blur_preserves_mean_interior(self):
        img = canvas(16, 0.5)
        blurred = box_blur(img, radius=2)
        np.testing.assert_allclose(blurred, img)

    def test_blur_zero_radius_identity(self):
        img = np.random.default_rng(1).random((8, 8))
        np.testing.assert_array_equal(box_blur(img, 0), img)

    def test_blur_negative_radius(self):
        with pytest.raises(ValueError):
            box_blur(canvas(8), -1)

    def test_affine_warp_bounded(self):
        rng = np.random.default_rng(2)
        img = canvas(16)
        draw_rect(img, (0.4, 0.4), (0.6, 0.6))
        warped = affine_warp(img, rng)
        assert warped.shape == img.shape
        assert warped.min() >= 0.0
        assert warped.max() <= 1.0 + 1e-9

    def test_normalize_to_uint8(self):
        img = np.array([[0.0, 0.5], [1.0, 2.0]])
        out = normalize_to_uint8(img)
        np.testing.assert_array_equal(out, [[0, 128], [255, 255]])
        assert out.dtype == np.uint8


def make_dataset(n_train=20, n_test=10, rgb=False):
    shape = (28, 28, 3) if rgb else (28, 28)
    rng = np.random.default_rng(3)
    return ImageDataset(
        name="toy",
        train_images=rng.integers(0, 256, size=(n_train, *shape), dtype=np.uint8),
        train_labels=np.arange(n_train) % 2,
        test_images=rng.integers(0, 256, size=(n_test, *shape), dtype=np.uint8),
        test_labels=np.arange(n_test) % 2,
        class_names=("a", "b"),
    )


class TestImageDataset:
    def test_properties(self):
        data = make_dataset()
        assert data.num_classes == 2
        assert data.image_shape == (28, 28)
        assert data.num_pixels == 784
        assert not data.is_rgb

    def test_rgb_grayscale(self):
        data = make_dataset(rgb=True)
        assert data.is_rgb
        gray = data.grayscale()
        assert not gray.is_rgb
        assert gray.image_shape == (28, 28)
        assert gray.train_images.dtype == np.uint8

    def test_grayscale_noop_for_gray(self):
        data = make_dataset()
        assert data.grayscale() is data

    def test_luma_weights(self):
        img = np.zeros((1, 2, 2, 3), dtype=np.uint8)
        img[..., 1] = 255  # pure green
        data = ImageDataset("g", img, np.array([0]), img, np.array([0]), ("x",))
        gray = data.grayscale()
        assert int(gray.train_images[0, 0, 0]) == 150  # round(0.587 * 255)

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ImageDataset(
                name="bad",
                train_images=np.zeros((3, 4, 4), dtype=np.uint8),
                train_labels=np.zeros(2, dtype=int),
                test_images=np.zeros((1, 4, 4), dtype=np.uint8),
                test_labels=np.zeros(1, dtype=int),
                class_names=("a",),
            )

    def test_dtype_enforced(self):
        with pytest.raises(ValueError):
            ImageDataset(
                name="bad",
                train_images=np.zeros((1, 4, 4), dtype=np.float64),
                train_labels=np.zeros(1, dtype=int),
                test_images=np.zeros((1, 4, 4), dtype=np.float64),
                test_labels=np.zeros(1, dtype=int),
                class_names=("a",),
            )

    def test_subset_stratified(self):
        data = make_dataset(n_train=40, n_test=20)
        sub = data.subset(10, 6, seed=1)
        assert sub.train_images.shape[0] == 10
        counts = np.bincount(sub.train_labels)
        assert (counts == 5).all()

    def test_subset_too_small(self):
        data = make_dataset()
        with pytest.raises(ValueError):
            data.subset(1, 1)


class TestStratifiedIndices:
    def test_balanced(self):
        labels = np.array([0] * 10 + [1] * 10)
        rng = np.random.default_rng(0)
        idx = stratified_indices(labels, 4, rng)
        assert len(idx) == 8
        assert (np.bincount(labels[idx]) == 4).all()

    def test_insufficient(self):
        labels = np.array([0, 0, 1])
        with pytest.raises(ValueError):
            stratified_indices(labels, 2, np.random.default_rng(0))
