"""IDX parsing and the real-MNIST fallback loader."""

import gzip
import struct

import numpy as np
import pytest

from repro.datasets.idx import load_real_mnist, parse_idx


def encode_idx(array: np.ndarray) -> bytes:
    """Build a valid IDX buffer from a uint8 array."""
    header = struct.pack(">BBBB", 0, 0, 0x08, array.ndim)
    header += struct.pack(f">{array.ndim}I", *array.shape)
    return header + array.astype(np.uint8).tobytes()


class TestParseIdx:
    def test_round_trip_3d(self):
        array = np.arange(24, dtype=np.uint8).reshape(2, 3, 4)
        np.testing.assert_array_equal(parse_idx(encode_idx(array)), array)

    def test_round_trip_1d(self):
        array = np.array([5, 0, 9], dtype=np.uint8)
        np.testing.assert_array_equal(parse_idx(encode_idx(array)), array)

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            parse_idx(b"\x01\x00\x08\x01" + b"\x00" * 8)

    def test_unknown_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            parse_idx(struct.pack(">BBBB", 0, 0, 0x05, 1) + b"\x00" * 8)

    def test_truncated_payload(self):
        array = np.zeros(10, dtype=np.uint8)
        data = encode_idx(array)[:-2]
        with pytest.raises(ValueError, match="size"):
            parse_idx(data)

    def test_too_short(self):
        with pytest.raises(ValueError):
            parse_idx(b"\x00\x00")


class TestLoadRealMnist:
    def test_missing_directory_returns_none(self, tmp_path):
        assert load_real_mnist(tmp_path / "nope") is None

    def test_partial_files_return_none(self, tmp_path):
        (tmp_path / "train-images-idx3-ubyte").write_bytes(
            encode_idx(np.zeros((1, 28, 28), dtype=np.uint8))
        )
        assert load_real_mnist(tmp_path) is None

    def _write_full_set(self, directory, gzipped=False):
        rng = np.random.default_rng(0)
        files = {
            "train-images-idx3-ubyte": rng.integers(
                0, 256, size=(20, 28, 28), dtype=np.uint8),
            "train-labels-idx1-ubyte": (np.arange(20) % 10).astype(np.uint8),
            "t10k-images-idx3-ubyte": rng.integers(
                0, 256, size=(10, 28, 28), dtype=np.uint8),
            "t10k-labels-idx1-ubyte": (np.arange(10) % 10).astype(np.uint8),
        }
        for stem, array in files.items():
            payload = encode_idx(array)
            if gzipped:
                (directory / f"{stem}.gz").write_bytes(gzip.compress(payload))
            else:
                (directory / stem).write_bytes(payload)
        return files

    def test_full_set_loads(self, tmp_path):
        files = self._write_full_set(tmp_path)
        data = load_real_mnist(tmp_path)
        assert data is not None
        assert data.name == "mnist"
        np.testing.assert_array_equal(
            data.train_images, files["train-images-idx3-ubyte"])
        assert data.train_labels.dtype == np.int64

    def test_gzipped_set_loads(self, tmp_path):
        self._write_full_set(tmp_path, gzipped=True)
        data = load_real_mnist(tmp_path)
        assert data is not None
        assert data.test_images.shape == (10, 28, 28)

    def test_registry_uses_real_files(self, tmp_path, monkeypatch):
        from repro.datasets import load_dataset

        self._write_full_set(tmp_path)
        monkeypatch.setenv("REPRO_MNIST_DIR", str(tmp_path))
        data = load_dataset("mnist", n_train=10, n_test=10, seed=0)
        assert data.name == "mnist"
        assert data.train_images.shape[0] == 10
