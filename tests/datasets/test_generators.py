"""Procedural dataset generators: shapes, determinism, class structure."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    load_dataset,
    render_blood_cell,
    render_breast_scan,
    render_digit,
    render_garment,
    render_house_number,
    render_object,
    synthetic_blood,
    synthetic_breast,
    synthetic_cifar10,
    synthetic_fashion,
    synthetic_mnist,
    synthetic_svhn,
)

_EXPECTED = {
    "mnist": ((28, 28), 10),
    "fashion": ((28, 28), 10),
    "cifar10": ((32, 32, 3), 10),
    "blood": ((28, 28, 3), 8),
    "breast": ((28, 28), 2),
    "svhn": ((32, 32, 3), 10),
}


class TestRegistry:
    def test_names(self):
        assert set(DATASET_NAMES) == set(_EXPECTED)

    @pytest.mark.parametrize("name", sorted(_EXPECTED))
    def test_shapes_and_classes(self, name):
        shape, classes = _EXPECTED[name]
        data = load_dataset(name, n_train=2 * classes, n_test=classes, seed=0)
        assert data.image_shape == shape
        assert data.num_classes == classes
        assert data.train_images.dtype == np.uint8

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("imagenet")

    @pytest.mark.parametrize("name", sorted(_EXPECTED))
    def test_deterministic(self, name):
        classes = _EXPECTED[name][1]
        a = load_dataset(name, n_train=classes, n_test=classes, seed=3)
        b = load_dataset(name, n_train=classes, n_test=classes, seed=3)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_seed_changes_images(self):
        a = load_dataset("mnist", n_train=10, n_test=10, seed=0)
        b = load_dataset("mnist", n_train=10, n_test=10, seed=1)
        assert not np.array_equal(a.train_images, b.train_images)


class TestClassBalance:
    @pytest.mark.parametrize("factory,classes", [
        (synthetic_mnist, 10),
        (synthetic_fashion, 10),
        (synthetic_cifar10, 10),
        (synthetic_blood, 8),
        (synthetic_breast, 2),
        (synthetic_svhn, 10),
    ])
    def test_balanced_labels(self, factory, classes):
        data = factory(n_train=classes * 3, n_test=classes, seed=0)
        counts = np.bincount(data.train_labels, minlength=classes)
        assert (counts == 3).all()


class TestMnistStatistics:
    def test_sparse_background(self):
        data = synthetic_mnist(n_train=50, n_test=10, seed=0)
        zero_fraction = float((data.train_images == 0).mean())
        assert zero_fraction > 0.6  # real MNIST is ~0.80

    def test_strokes_bright(self):
        data = synthetic_mnist(n_train=50, n_test=10, seed=0)
        assert data.train_images.max() > 200


class TestRenderers:
    @pytest.mark.parametrize("renderer,labels,rgb", [
        (render_digit, range(10), False),
        (render_garment, range(10), False),
        (render_object, range(10), True),
        (render_blood_cell, range(8), True),
        (render_breast_scan, range(2), False),
        (render_house_number, range(10), True),
    ])
    def test_output_range_all_classes(self, renderer, labels, rgb):
        rng = np.random.default_rng(0)
        for label in labels:
            img = renderer(label, 28, rng)
            assert img.min() >= 0.0 and img.max() <= 1.0
            assert img.ndim == (3 if rgb else 2)

    @pytest.mark.parametrize("renderer,bad", [
        (render_digit, 10),
        (render_garment, -1),
        (render_object, 10),
        (render_blood_cell, 8),
        (render_breast_scan, 2),
    ])
    def test_bad_label(self, renderer, bad):
        with pytest.raises(ValueError):
            renderer(bad, 28, np.random.default_rng(0))

    def test_classes_are_distinguishable(self):
        # Mean images of different digit classes must differ substantially.
        rng = np.random.default_rng(1)
        mean0 = np.mean([render_digit(0, 28, rng) for _ in range(10)], axis=0)
        mean1 = np.mean([render_digit(1, 28, rng) for _ in range(10)], axis=0)
        assert np.abs(mean0 - mean1).mean() > 0.02
