"""Cross-module integration tests: the claims that tie the repo together."""

import numpy as np
import pytest

import repro
from repro import (
    BaselineConfig,
    BaselineHDC,
    UHDClassifier,
    UHDConfig,
    load_dataset,
)
from repro.core import SobolLevelEncoder, UnaryDomainEncoder
from repro.hardware import Simulator
from repro.hardware.circuits import (
    build_masking_binarizer,
    build_unary_comparator,
    unary_comparator_stimulus,
)
from repro.lds.quantize import quantize_intensity


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestUnaryArithmeticHardwareAgreement:
    """One (pixel, dimension) comparison traced through all three layers:
    numpy arithmetic, the functional unary model, and the gate netlist."""

    def test_three_way_agreement(self):
        config = UHDConfig(dim=32, levels=16)
        num_pixels = 9
        arithmetic = SobolLevelEncoder(num_pixels, config)
        unary = UnaryDomainEncoder(num_pixels, config)
        comparator = Simulator(build_unary_comparator(16))

        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=num_pixels, dtype=np.uint8)
        data_codes = quantize_intensity(image, 16)

        level_bits = unary.level_bits(image)
        encoded = arithmetic.encode(image)

        for pixel in (0, 4, 8):
            for dim in (0, 13, 31):
                sobol_code = int(unary.sobol_codes[pixel, dim])
                stim = unary_comparator_stimulus(
                    16, [(int(data_codes[pixel]), sobol_code)]
                )[0]
                hw_bit = comparator.step(stim)["ge"]
                assert hw_bit == int(level_bits[pixel, dim])
        # And the accumulators agree in full.
        np.testing.assert_array_equal(encoded, unary.encode(image))


class TestMaskingBinarizerMatchesSoftware:
    def test_netlist_vs_numpy_sign(self):
        h = 32
        rng = np.random.default_rng(1)
        bits = (rng.random(h) < 0.5).astype(int)
        sim = Simulator(build_masking_binarizer(h))
        hw_sign = sim.run([{"bit": int(b)} for b in bits])[-1]["sign"]
        accumulator = 2 * int(bits.sum()) - h
        from repro.core import masking_binarize

        sw_sign = int(masking_binarize(np.array([accumulator]), h)[0] > 0)
        assert hw_sign == sw_sign


class TestEndToEndShapeClaims:
    """The paper's qualitative claims on a small but real workload."""

    @pytest.fixture(scope="class")
    def data(self):
        return load_dataset("mnist", n_train=400, n_test=200, seed=2)

    def test_uhd_is_deterministic_baseline_is_not(self, data):
        uhd_scores = set()
        for _ in range(2):
            model = UHDClassifier(784, 10, UHDConfig(dim=256))
            model.fit(data.train_images, data.train_labels)
            uhd_scores.add(model.score(data.test_images, data.test_labels))
        assert len(uhd_scores) == 1

        base_preds = []
        for seed in range(2):
            model = BaselineHDC(784, 10, BaselineConfig(dim=256, seed=seed))
            model.fit(data.train_images, data.train_labels)
            base_preds.append(model.predict(data.test_images))
        assert not np.array_equal(base_preds[0], base_preds[1])

    def test_both_models_learn(self, data):
        uhd = UHDClassifier(784, 10, UHDConfig(dim=512))
        uhd.fit(data.train_images, data.train_labels)
        base = BaselineHDC(784, 10, BaselineConfig(dim=512, seed=0))
        base.fit(data.train_images, data.train_labels)
        assert uhd.score(data.test_images, data.test_labels) > 0.35
        assert base.score(data.test_images, data.test_labels) > 0.35

    def test_quantization_does_not_collapse_accuracy(self, data):
        # Paper Section III: xi = 16 quantization "does not affect the
        # accuracy of the system" — allow a modest band.
        quantized = UHDClassifier(784, 10, UHDConfig(dim=512, quantized=True))
        quantized.fit(data.train_images, data.train_labels)
        full = UHDClassifier(784, 10, UHDConfig(dim=512, quantized=False))
        full.fit(data.train_images, data.train_labels)
        q_acc = quantized.score(data.test_images, data.test_labels)
        f_acc = full.score(data.test_images, data.test_labels)
        assert abs(q_acc - f_acc) < 0.10

    def test_sobol_beats_halton_or_close(self, data):
        sobol = UHDClassifier(784, 10, UHDConfig(dim=256, lds="sobol"))
        sobol.fit(data.train_images, data.train_labels)
        halton = UHDClassifier(784, 10, UHDConfig(dim=256, lds="halton"))
        halton.fit(data.train_images, data.train_labels)
        s_acc = sobol.score(data.test_images, data.test_labels)
        h_acc = halton.score(data.test_images, data.test_labels)
        assert s_acc > h_acc - 0.15  # both LD families must be usable
