"""ARM-class cost model, op traces and memory accounting (Table I)."""

import pytest

from repro.embedded import (
    ArmCoreModel,
    BASELINE_CODE_BYTES,
    UHD_CODE_BYTES,
    OperationCounts,
    baseline_image_ops,
    baseline_memory,
    baseline_pixel_dim_ops,
    uhd_image_ops,
    uhd_memory,
    uhd_pixel_dim_ops,
)


class TestOperationCounts:
    def test_addition(self):
        total = OperationCounts(loads=1, alu=2) + OperationCounts(loads=3, mul=1)
        assert total.loads == 4
        assert total.alu == 2
        assert total.mul == 1

    def test_scaled(self):
        ops = OperationCounts(loads=2, branches=1).scaled(10)
        assert ops.loads == 20
        assert ops.branches == 10

    def test_scaled_negative(self):
        with pytest.raises(ValueError):
            OperationCounts(loads=1).scaled(-1)

    def test_total(self):
        ops = OperationCounts(loads=1, stores=2, alu=3, mul=4, branches=5,
                              rng_calls=6)
        assert ops.total_ops == 21


class TestArmCoreModel:
    def test_cycle_accounting(self):
        core = ArmCoreModel(load_cycles=3, alu_cycles=1)
        ops = OperationCounts(loads=10, alu=5)
        assert core.cycles(ops) == pytest.approx(35.0)

    def test_runtime_uses_clock(self):
        core = ArmCoreModel(clock_hz=1e6)
        ops = OperationCounts(alu=1_000_000)
        assert core.runtime_seconds(ops) == pytest.approx(1.0)

    def test_rng_dominates(self):
        core = ArmCoreModel()
        with_rng = OperationCounts(rng_calls=1)
        without = OperationCounts(alu=1)
        assert core.cycles(with_rng) > 50 * core.cycles(without)

    def test_energy_positive(self):
        core = ArmCoreModel()
        assert core.energy_joules(OperationCounts(alu=100)) > 0


class TestProfiles:
    def test_baseline_inner_loop_has_rng_and_mul(self):
        ops = baseline_pixel_dim_ops()
        assert ops.rng_calls == 2
        assert ops.mul == 1

    def test_uhd_inner_loop_has_neither(self):
        ops = uhd_pixel_dim_ops()
        assert ops.rng_calls == 0
        assert ops.mul == 0

    def test_image_ops_scale_with_pixels_and_dim(self):
        small = uhd_image_ops(10, 100)
        large = uhd_image_ops(20, 100)
        assert large.total_ops > small.total_ops

    def test_speedup_matches_paper_band(self):
        # Paper: 43.8x at D=1K; the model must land in the tens.
        core = ArmCoreModel()
        speedup = (core.runtime_seconds(baseline_image_ops(784, 1024))
                   / core.runtime_seconds(uhd_image_ops(784, 1024)))
        assert 10 < speedup < 100

    def test_code_sizes(self):
        assert sum(BASELINE_CODE_BYTES.values()) > sum(UHD_CODE_BYTES.values())


class TestMemory:
    def test_uhd_much_smaller(self):
        base = baseline_memory(784, 1024).total_kb
        ours = uhd_memory(784, 1024).total_kb
        assert base / ours > 5  # paper: 10.4x at 1K

    def test_ratio_grows_with_dim(self):
        ratio_1k = (baseline_memory(784, 1024).total_kb
                    / uhd_memory(784, 1024).total_kb)
        ratio_8k = (baseline_memory(784, 8192).total_kb
                    / uhd_memory(784, 8192).total_kb)
        assert ratio_8k >= ratio_1k * 0.9

    def test_position_hypervectors_dominate_baseline(self):
        parts = baseline_memory(784, 1024).parts
        assert parts["position_hypervectors"] == max(parts.values())

    def test_uhd_has_no_position_store(self):
        assert "position_hypervectors" not in uhd_memory(784, 1024).parts

    def test_total_bytes_consistent(self):
        footprint = uhd_memory(100, 256)
        assert footprint.total_bytes == sum(footprint.parts.values())
        assert footprint.total_kb == pytest.approx(footprint.total_bytes / 1024)
