"""Shared utilities."""

import time

import pytest

from repro.utils import Stopwatch, require_in_range, require_positive


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.01

    def test_zero_before_use(self):
        assert Stopwatch().elapsed == 0.0


class TestValidation:
    def test_require_positive_passes(self):
        require_positive(1, "x")
        require_positive(0.001, "x")

    def test_require_positive_fails(self):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(0, "x")
        with pytest.raises(ValueError):
            require_positive(-1, "x")

    def test_require_in_range_passes(self):
        require_in_range(5, 0, 10, "y")
        require_in_range(0, 0, 10, "y")
        require_in_range(10, 0, 10, "y")

    def test_require_in_range_fails(self):
        with pytest.raises(ValueError, match="y must lie in"):
            require_in_range(11, 0, 10, "y")
