"""Model persistence: bit-exact round-trips, corruption and version errors."""

import json
import zipfile

import numpy as np
import pytest

from repro.api import ModelFormatError, get_backend, load_model, save_model
from repro.api.persistence import (
    FORMAT_NAME,
    FORMAT_VERSION,
    config_from_json,
    config_to_json,
)
from repro.core import StreamingUHD, UHDClassifier, UHDConfig
from repro.core.encoder import SobolLevelEncoder
from repro.fastpath.encoder import PackedLevelEncoder
from repro.hdc import BaselineConfig, BaselineHDC, CentroidClassifier

BACKENDS = ("reference", "packed", "threaded")


@pytest.fixture()
def rng():
    """Function-scoped stream: leaves the session ``rng`` fixture untouched
    (existing tests assert statistical properties at fixed positions of the
    shared stream)."""
    return np.random.default_rng(31415)


@pytest.mark.parametrize("backend", BACKENDS)
class TestUHDClassifierRoundTrip:
    def test_bit_exact_predictions(self, tiny_digits, tmp_path, backend):
        config = UHDConfig(dim=128, backend=backend)
        model = UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes, config
        ).fit(tiny_digits.train_images, tiny_digits.train_labels)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = UHDClassifier.load(path)
        assert loaded.config == config
        np.testing.assert_array_equal(
            loaded.predict(tiny_digits.test_images),
            model.predict(tiny_digits.test_images),
        )
        np.testing.assert_array_equal(
            loaded.classifier.accumulators, model.classifier.accumulators
        )

    def test_binarized_round_trip(self, tiny_digits, tmp_path, backend):
        config = UHDConfig(dim=128, backend=backend, binarize=True)
        model = UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes, config
        ).fit(tiny_digits.train_images, tiny_digits.train_labels)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = load_model(path)  # generic entry point, class from header
        assert isinstance(loaded, UHDClassifier)
        np.testing.assert_array_equal(
            loaded.predict(tiny_digits.test_images),
            model.predict(tiny_digits.test_images),
        )


class TestLoadNeverReencodes:
    def test_load_does_not_call_encode_batch(self, tiny_digits, tmp_path,
                                             monkeypatch):
        model = UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes, UHDConfig(dim=128)
        ).fit(tiny_digits.train_images, tiny_digits.train_labels)
        path = tmp_path / "model.npz"
        model.save(path)

        def boom(self, images, chunk=32):  # pragma: no cover - must not run
            raise AssertionError("load() re-encoded data")

        monkeypatch.setattr(SobolLevelEncoder, "encode_batch", boom)
        monkeypatch.setattr(PackedLevelEncoder, "encode_batch", boom)
        loaded = UHDClassifier.load(path)  # encoder built, nothing encoded
        np.testing.assert_array_equal(
            loaded.classifier.accumulators, model.classifier.accumulators
        )


class TestStreamingRoundTrip:
    def test_resumable_stream(self, tiny_digits, tmp_path):
        config = UHDConfig(dim=128)
        stream = StreamingUHD(
            tiny_digits.num_pixels, tiny_digits.num_classes, config
        )
        stream.partial_fit(tiny_digits.train_images[:100],
                           tiny_digits.train_labels[:100])
        path = tmp_path / "stream.npz"
        stream.save(path)
        resumed = StreamingUHD.load(path)
        assert resumed.samples_seen == stream.samples_seen
        np.testing.assert_array_equal(
            resumed.predict(tiny_digits.test_images),
            stream.predict(tiny_digits.test_images),
        )
        # accumulation continues seamlessly on both sides
        stream.partial_fit(tiny_digits.train_images[100:],
                           tiny_digits.train_labels[100:])
        resumed.partial_fit(tiny_digits.train_images[100:],
                            tiny_digits.train_labels[100:])
        np.testing.assert_array_equal(
            resumed.predict(tiny_digits.test_images),
            stream.predict(tiny_digits.test_images),
        )


class TestBaselineRoundTrip:
    def test_bit_exact_after_reseed(self, tiny_digits, tmp_path):
        model = BaselineHDC(
            tiny_digits.num_pixels, tiny_digits.num_classes,
            BaselineConfig(dim=128, seed=0),
        )
        model.reseed(3)  # persisted codebooks must be *this* draw, not seed 0
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        path = tmp_path / "baseline.npz"
        model.save(path)
        loaded = BaselineHDC.load(path)
        assert loaded.active_seed == 3
        np.testing.assert_array_equal(
            loaded.predict(tiny_digits.test_images),
            model.predict(tiny_digits.test_images),
        )


class TestCentroidRoundTrip:
    def test_bit_exact(self, rng, tmp_path):
        encoded = rng.integers(-50, 51, size=(64, 128)).astype(np.int64)
        labels = rng.integers(0, 4, size=64)
        clf = CentroidClassifier(
            4, 128, binarize=True, backend=get_backend("packed")
        ).fit(encoded, labels)
        path = tmp_path / "clf.npz"
        clf.save(path)
        loaded = CentroidClassifier.load(path)
        assert loaded.backend == "packed"
        assert loaded.binarize and loaded.center
        np.testing.assert_array_equal(loaded.predict(encoded), clf.predict(encoded))


class TestErrors:
    def _fitted(self, tiny_digits):
        return UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes, UHDConfig(dim=64)
        ).fit(tiny_digits.train_images, tiny_digits.train_labels)

    def test_save_unfitted_raises(self, tiny_digits, tmp_path):
        model = UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes, UHDConfig(dim=64)
        )
        with pytest.raises(RuntimeError, match="unfitted"):
            model.save(tmp_path / "nope.npz")

    def test_save_unknown_model_raises(self, tmp_path):
        with pytest.raises(TypeError, match="persist"):
            save_model(object(), tmp_path / "nope.npz")

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "absent.npz")

    def test_garbage_bytes_raise_model_format_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ModelFormatError, match="not a readable model file"):
            load_model(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "magic.npz"
        with open(path, "wb") as handle:
            np.savez(
                handle,
                **{
                    "__format__": np.array("other-format"),
                    "__version__": np.array(1),
                    "__model__": np.array("UHDClassifier"),
                },
            )
        with pytest.raises(ModelFormatError, match="magic"):
            load_model(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "headerless.npz"
        with open(path, "wb") as handle:
            np.savez(handle, accumulators=np.zeros((2, 4)))
        with pytest.raises(ModelFormatError, match="header"):
            load_model(path)

    def test_future_version_rejected(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits)
        path = tmp_path / "future.npz"
        model.save(path)
        arrays = dict(np.load(path, allow_pickle=False))
        arrays["__version__"] = np.array(FORMAT_VERSION + 1, dtype=np.int64)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ModelFormatError, match="version"):
            load_model(path)

    def test_truncated_payload_rejected(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits)
        path = tmp_path / "truncated.npz"
        model.save(path)
        arrays = dict(np.load(path, allow_pickle=False))
        del arrays["accumulators"]
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ModelFormatError, match="accumulators"):
            load_model(path)

    def test_wrong_model_class_rejected(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits)
        path = tmp_path / "model.npz"
        model.save(path)
        with pytest.raises(ModelFormatError, match="not a StreamingUHD"):
            StreamingUHD.load(path)

    def test_accumulator_shape_mismatch_rejected(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits)
        path = tmp_path / "shape.npz"
        model.save(path)
        arrays = dict(np.load(path, allow_pickle=False))
        arrays["accumulators"] = np.zeros((2, 2), dtype=np.int64)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ModelFormatError, match="shape"):
            load_model(path)

    def test_corrupted_zip_member_rejected(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits)
        path = tmp_path / "member.npz"
        model.save(path)
        # valid zip, but a payload member holding junk instead of a .npy
        import warnings

        with zipfile.ZipFile(path, "a") as archive:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)  # duplicate name
                archive.writestr("accumulators.npy", b"not-a-npy")
        with pytest.raises(ModelFormatError):
            load_model(path)


class TestBackendPersistenceEdges:
    def test_save_with_unregistered_backend_fails_fast(self, rng, tmp_path):
        class Rogue:
            name = "rogue"

            def make_encoder(self, num_pixels, config):  # pragma: no cover
                raise NotImplementedError

            def encoder_kind(self, config, num_pixels):
                return "reference"

            def use_packed_inference(self, binarize):
                return False

            def packed_predict(self, q, c, d):  # pragma: no cover
                raise NotImplementedError

            def packed_cosine(self, q, c, d):  # pragma: no cover
                raise NotImplementedError

        encoded = rng.integers(-5, 6, size=(20, 32)).astype(np.int64)
        labels = rng.integers(0, 2, size=20)
        clf = CentroidClassifier(2, 32, backend=Rogue()).fit(encoded, labels)
        with pytest.raises(ValueError, match="unregistered backend"):
            clf.save(tmp_path / "rogue.npz")
        assert not (tmp_path / "rogue.npz").exists()  # nothing half-written

    def test_load_with_missing_backend_plugin(self, rng, tmp_path):
        from repro.api import register_backend, unregister_backend
        from repro.fastpath.execution import ReferenceBackend

        class Plugin(ReferenceBackend):
            name = "test-plugin"

        register_backend("test-plugin", Plugin)
        try:
            encoded = rng.integers(-5, 6, size=(20, 32)).astype(np.int64)
            labels = rng.integers(0, 2, size=20)
            clf = CentroidClassifier(
                2, 32, backend=get_backend("test-plugin")
            ).fit(encoded, labels)
            path = tmp_path / "plugin.npz"
            clf.save(path)
        finally:
            unregister_backend("test-plugin")
        with pytest.raises(ModelFormatError, match="not registered"):
            CentroidClassifier.load(path)

    def test_with_backend_clone_is_bit_exact(self, tiny_digits):
        model = UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes,
            UHDConfig(dim=128, backend="reference"),
        ).fit(tiny_digits.train_images, tiny_digits.train_labels)
        clone = model.with_backend("threaded")
        assert clone.config.backend == "threaded"
        np.testing.assert_array_equal(
            clone.predict(tiny_digits.test_images),
            model.predict(tiny_digits.test_images),
        )
        # the original is untouched and unfitted clones also work
        assert model.config.backend == "reference"
        cold = UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes, UHDConfig(dim=128)
        ).with_backend("packed")
        with pytest.raises(RuntimeError):
            cold.predict(tiny_digits.test_images)


class TestConfigJson:
    def test_round_trip(self):
        config = UHDConfig(dim=2048, levels=32, backend="threaded", seed=7)
        assert config_from_json(config_to_json(config), UHDConfig) == config

    def test_unknown_field_rejected(self):
        payload = json.dumps({"dim": 64, "quantum": True})
        with pytest.raises(ModelFormatError, match="quantum"):
            config_from_json(payload, UHDConfig)

    def test_invalid_json_rejected(self):
        with pytest.raises(ModelFormatError, match="JSON"):
            config_from_json("{not json", UHDConfig)

    def test_missing_fields_take_defaults(self):
        config = config_from_json(json.dumps({"dim": 4096}), UHDConfig)
        assert config.dim == 4096
        assert config.levels == 16


class TestTableSidecar:
    """save_model(include_tables=True): warm-start from disk, no rebuild."""

    def _fitted(self, tiny_digits, backend="packed"):
        config = UHDConfig(dim=128, backend=backend, binarize=True)
        return UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes, config
        ).fit(tiny_digits.train_images, tiny_digits.train_labels)

    def test_sidecar_written_and_attached(self, tiny_digits, tmp_path):
        from repro.api import table_sidecar_path

        model = self._fitted(tiny_digits)
        path = tmp_path / "model.npz"
        save_model(model, path, include_tables=True)
        sidecar = table_sidecar_path(path)
        assert (tmp_path / "model.npz.tables").exists()
        assert sidecar == str(path) + ".tables"
        loaded = load_model(path)
        # tables attached, not rebuilt: counter never moved, yet warm
        assert loaded.encoder.tables_ready
        assert loaded.encoder.table_builds == 0
        np.testing.assert_array_equal(
            loaded.predict(tiny_digits.test_images),
            model.predict(tiny_digits.test_images),
        )

    def test_sidecar_attaches_promoted_pair_table(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits)
        path = tmp_path / "model.npz"
        save_model(model, path, include_tables=True)
        loaded = load_model(path)
        assert loaded.encoder._table.group == 2  # no re-promotion needed

    def test_sidecar_serves_rehomed_backend(self, tiny_digits, tmp_path):
        """The table key excludes backend: a packed sidecar warms a
        threaded load."""
        model = self._fitted(tiny_digits)
        path = tmp_path / "model.npz"
        save_model(model, path, include_tables=True)
        loaded = load_model(path, backend="threaded")
        assert loaded.encoder.tables_ready
        assert loaded.encoder.table_builds == 0
        np.testing.assert_array_equal(
            loaded.predict(tiny_digits.test_images),
            model.predict(tiny_digits.test_images),
        )

    def test_missing_sidecar_is_fine(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits)
        path = tmp_path / "model.npz"
        save_model(model, path)  # no sidecar
        loaded = load_model(path)
        assert not loaded.encoder.tables_ready  # lazy as always
        np.testing.assert_array_equal(
            loaded.predict(tiny_digits.test_images),
            model.predict(tiny_digits.test_images),
        )

    def test_mismatched_sidecar_rejected(self, tiny_digits, tmp_path):
        from repro.api import table_sidecar_path

        model = self._fitted(tiny_digits)
        path = tmp_path / "model.npz"
        save_model(model, path, include_tables=True)
        # overwrite the sidecar with tables for a different geometry
        other = UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes,
            UHDConfig(dim=128, backend="packed", binarize=True, seed=9),
        ).fit(tiny_digits.train_images, tiny_digits.train_labels)
        other_path = tmp_path / "other.npz"
        save_model(other, other_path, include_tables=True)
        import shutil

        shutil.copy(table_sidecar_path(other_path), table_sidecar_path(path))
        with pytest.raises(ModelFormatError, match="sidecar"):
            load_model(path)

    def test_include_tables_needs_exportable_encoder(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits, backend="reference")
        with pytest.raises(ValueError, match="exportable"):
            save_model(model, tmp_path / "ref.npz", include_tables=True)

    def test_include_tables_needs_a_path(self, tiny_digits, tmp_path):
        model = self._fitted(tiny_digits)
        with open(tmp_path / "obj.npz", "wb") as handle:
            with pytest.raises(ValueError, match="path"):
                save_model(model, handle, include_tables=True)

    def test_resave_without_tables_removes_stale_sidecar(
        self, tiny_digits, tmp_path
    ):
        """A sidecar always describes the model it sits next to: saving
        without include_tables must not leave the previous one behind."""
        from repro.api import table_sidecar_path

        model = self._fitted(tiny_digits)
        path = tmp_path / "model.npz"
        save_model(model, path, include_tables=True)
        assert (tmp_path / "model.npz.tables").exists()
        other = UHDClassifier(
            tiny_digits.num_pixels, tiny_digits.num_classes,
            UHDConfig(dim=128, backend="packed", binarize=True, seed=5),
        ).fit(tiny_digits.train_images, tiny_digits.train_labels)
        save_model(other, path)  # overwrite, no tables
        assert not (tmp_path / "model.npz.tables").exists()
        loaded = load_model(path)  # must not trip over a stale sidecar
        np.testing.assert_array_equal(
            loaded.predict(tiny_digits.test_images),
            other.predict(tiny_digits.test_images),
        )
