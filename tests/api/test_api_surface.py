"""The public repro.api surface: docstrings, examples, README consistency."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro.api as api

README = Path(__file__).resolve().parents[2] / "README.md"


class TestAllExports:
    def test_every_all_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_dir_covers_all(self):
        assert set(api.__all__) <= set(dir(api))

    @pytest.mark.parametrize("name", sorted(api.__all__))
    def test_every_export_has_docstring_with_example(self, name):
        symbol = getattr(api, name)
        if not hasattr(symbol, "__doc__") or isinstance(symbol, (str, int)):
            # module-level constants (FORMAT_NAME/FORMAT_VERSION) are
            # documented by #: comments in their defining module instead
            return
        doc = symbol.__doc__ or ""
        assert len(doc.strip()) > 20, f"{name} has no real docstring"
        assert "Example" in doc or ">>>" in doc or "::" in doc, (
            f"{name}'s docstring has no usage example"
        )

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            api.definitely_not_a_symbol


class TestReadmeConsistency:
    """__all__ must cover every repro.api symbol the README references."""

    def _readme_api_names(self) -> set[str]:
        text = README.read_text(encoding="utf-8")
        names = set(re.findall(r"repro\.api\.([A-Za-z_]\w*)", text))
        for imports in re.findall(
            r"from repro\.api import ([A-Za-z_, ]+)", text
        ):
            names.update(n.strip() for n in imports.split(",") if n.strip())
        return names

    def test_readme_references_are_exported(self):
        referenced = self._readme_api_names()
        assert referenced, "README no longer mentions repro.api — update this test"
        missing = {
            name for name in referenced
            if name not in api.__all__ and not hasattr(api, name)
        }
        assert not missing, (
            f"README references repro.api symbols not exported: {sorted(missing)}"
        )

    def test_quickstart_symbols_exported(self):
        # the README quickstart's exact surface, spelled out
        for name in ("load_model", "save_model", "register_backend",
                     "get_backend", "Backend", "Estimator", "ModelFormatError"):
            assert name in api.__all__
