"""Backend registry: lookup, registration, config validation, deprecations."""

import numpy as np
import pytest

from repro.api import (
    Backend,
    Estimator,
    get_backend,
    is_registered_backend,
    list_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.core import StreamingUHD, UHDClassifier, UHDConfig
from repro.core.encoder import SobolLevelEncoder
from repro.fastpath.encoder import PackedLevelEncoder
from repro.fastpath.threaded import ThreadedLevelEncoder
from repro.hdc import BaselineConfig, BaselineHDC, CentroidClassifier


class TestBuiltinRegistry:
    def test_builtins_registered(self):
        for name in ("auto", "packed", "reference", "threaded"):
            assert is_registered_backend(name)
            assert name in list_backends()

    def test_instances_are_cached(self):
        assert get_backend("packed") is get_backend("packed")

    def test_instances_satisfy_protocol(self):
        for name in list_backends():
            assert isinstance(get_backend(name), Backend)

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="registered backends"):
            get_backend("gpu")

    def test_resolve_passes_instances_through(self):
        backend = get_backend("reference")
        assert resolve_backend(backend) is backend
        assert resolve_backend("reference") is backend
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_encoder_construction_per_backend(self):
        config = UHDConfig(dim=64)
        assert isinstance(
            get_backend("reference").make_encoder(16, config), SobolLevelEncoder
        )
        packed = get_backend("packed").make_encoder(16, config)
        assert isinstance(packed, PackedLevelEncoder)
        assert not isinstance(packed, ThreadedLevelEncoder)
        assert isinstance(
            get_backend("threaded").make_encoder(16, config), ThreadedLevelEncoder
        )


class _ReferenceClone:
    """Minimal third-party backend: delegates everything to reference paths."""

    name = "test-clone"

    def make_encoder(self, num_pixels, config):
        return SobolLevelEncoder(num_pixels, config)

    def encoder_kind(self, config, num_pixels):
        return "reference"

    def use_packed_inference(self, binarize):
        return False

    def packed_predict(self, queries, class_words, dim):  # pragma: no cover
        raise NotImplementedError

    def packed_cosine(self, query_words, class_words, dim):  # pragma: no cover
        raise NotImplementedError


class TestThirdPartyRegistration:
    def test_registered_backend_reaches_config_and_model(self, tiny_digits):
        register_backend("test-clone", _ReferenceClone)
        try:
            config = UHDConfig(dim=128, backend="test-clone")
            model = UHDClassifier(
                tiny_digits.num_pixels, tiny_digits.num_classes, config
            )
            model.fit(tiny_digits.train_images, tiny_digits.train_labels)
            twin = UHDClassifier(
                tiny_digits.num_pixels,
                tiny_digits.num_classes,
                UHDConfig(dim=128, backend="reference"),
            ).fit(tiny_digits.train_images, tiny_digits.train_labels)
            np.testing.assert_array_equal(
                model.predict(tiny_digits.test_images),
                twin.predict(tiny_digits.test_images),
            )
        finally:
            unregister_backend("test-clone")
        with pytest.raises(ValueError):
            UHDConfig(backend="test-clone")

    def test_duplicate_registration_needs_replace(self):
        register_backend("test-dup", _ReferenceClone)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("test-dup", _ReferenceClone)
            register_backend("test-dup", _ReferenceClone, replace=True)
        finally:
            unregister_backend("test-dup")

    def test_factory_result_is_type_checked(self):
        register_backend("test-bad", lambda: object())
        try:
            with pytest.raises(TypeError, match="Backend protocol"):
                get_backend("test-bad")
        finally:
            unregister_backend("test-bad")


class TestConfigValidation:
    def test_threaded_is_a_valid_config_backend(self):
        assert UHDConfig(backend="threaded").backend == "threaded"

    def test_unregistered_backend_rejected(self):
        with pytest.raises(ValueError, match="register_backend"):
            UHDConfig(backend="gpu")


class TestEstimatorProtocol:
    def test_all_models_satisfy_estimator(self, tiny_digits):
        config = UHDConfig(dim=64)
        models = [
            UHDClassifier(tiny_digits.num_pixels, tiny_digits.num_classes, config),
            StreamingUHD(tiny_digits.num_pixels, tiny_digits.num_classes, config),
            BaselineHDC(
                tiny_digits.num_pixels,
                tiny_digits.num_classes,
                BaselineConfig(dim=64),
            ),
            CentroidClassifier(tiny_digits.num_classes, 64),
        ]
        for model in models:
            assert isinstance(model, Estimator), type(model).__name__


class TestDeprecatedSurface:
    def test_make_encoder_still_works_but_warns(self):
        from repro.fastpath.backends import make_encoder

        config = UHDConfig(dim=64)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            encoder = make_encoder(16, config)
        assert isinstance(encoder, PackedLevelEncoder)

    def test_classifier_string_backend_still_works_but_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            clf = CentroidClassifier(3, 64, backend="packed")
        assert clf.backend == "packed"

    def test_classifier_default_backend_does_not_warn(self, recwarn):
        CentroidClassifier(3, 64)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_legacy_helpers_delegate_to_registry(self):
        from repro.fastpath.backends import (
            encoder_backend,
            use_packed_inference,
            validate_backend,
        )

        assert validate_backend("threaded") == "threaded"
        assert encoder_backend(UHDConfig(dim=64, backend="threaded"), 16) == "packed"
        assert use_packed_inference("threaded", binarize=True)
        assert not use_packed_inference("reference", binarize=True)
        with pytest.raises(ValueError):
            validate_backend("gpu")
