"""Unary algebra (min/max/median) and SCC correlation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unary import (
    UnaryBitstream,
    is_maximally_correlated,
    overlap,
    scc,
    unary_max,
    unary_max_batch,
    unary_median3,
    unary_min,
    unary_min_batch,
    unary_sort2,
)

values = st.integers(0, 12)


def stream(v: int) -> UnaryBitstream:
    return UnaryBitstream.from_value(v, 12)


class TestOps:
    @given(a=values, b=values)
    @settings(max_examples=40)
    def test_sort2(self, a, b):
        lo, hi = unary_sort2(stream(a), stream(b))
        assert (lo.value, hi.value) == (min(a, b), max(a, b))

    @given(a=values, b=values, c=values)
    @settings(max_examples=40)
    def test_median3(self, a, b, c):
        med = unary_median3(stream(a), stream(b), stream(c))
        assert med.value == int(np.median([a, b, c]))

    @given(a=values, b=values)
    @settings(max_examples=30)
    def test_min_max_consistency(self, a, b):
        assert unary_min(stream(a), stream(b)).value + \
            unary_max(stream(a), stream(b)).value == a + b

    def test_min_batch(self):
        streams = np.stack([stream(v).bits for v in (3, 7, 5)])
        assert int(unary_min_batch(streams).sum()) == 3

    def test_max_batch(self):
        streams = np.stack([stream(v).bits for v in (3, 7, 5)])
        assert int(unary_max_batch(streams).sum()) == 7

    def test_batch_needs_matrix(self):
        with pytest.raises(ValueError):
            unary_min_batch(stream(3).bits)
        with pytest.raises(ValueError):
            unary_max_batch(stream(3).bits)


class TestOverlap:
    def test_counts_joint_ones(self):
        assert overlap(stream(5).bits, stream(3).bits) == 3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            overlap(np.zeros(4, bool), np.zeros(5, bool))


class TestScc:
    @given(a=st.integers(1, 11), b=st.integers(1, 11))
    @settings(max_examples=40)
    def test_aligned_unary_is_plus_one(self, a, b):
        assert scc(stream(a).bits, stream(b).bits) == pytest.approx(1.0)

    def test_anti_aligned_is_minus_one(self):
        x = UnaryBitstream.from_value(4, 12).bits
        y = UnaryBitstream.from_value(4, 12, alignment="leading").bits
        assert scc(x, y) == pytest.approx(-1.0)

    def test_degenerate_streams_zero(self):
        assert scc(np.zeros(8, bool), stream(4).bits[:8]) == 0.0
        assert scc(np.ones(8, bool), stream(4).bits[:8]) == 0.0

    def test_independent_near_zero(self):
        rng = np.random.default_rng(9)
        x = rng.random(4096) < 0.5
        y = rng.random(4096) < 0.5
        assert abs(scc(x, y)) < 0.08

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scc(np.array([], bool), np.array([], bool))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            scc(np.zeros(4, bool), np.zeros(5, bool))


class TestMaximallyCorrelated:
    @given(a=values, b=values)
    @settings(max_examples=30)
    def test_unary_pairs_always(self, a, b):
        assert is_maximally_correlated(stream(a).bits, stream(b).bits)

    def test_disjoint_not(self):
        x = np.array([1, 1, 0, 0], bool)
        y = np.array([0, 0, 1, 1], bool)
        assert not is_maximally_correlated(x, y)
