"""Unary sorting networks (reference [16] substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unary import (
    UnaryBitstream,
    batcher_network,
    compare_exchange_count,
    unary_rank,
    unary_sort,
)

_N = 10
value_lists = st.lists(st.integers(0, _N), min_size=1, max_size=9)


def streams_of(values):
    return [UnaryBitstream.from_value(v, _N) for v in values]


class TestBatcherNetwork:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8])
    def test_sorts_all_binary_inputs(self, n):
        # 0-1 principle: a network sorting every 0/1 vector sorts anything.
        pairs = batcher_network(n)
        for pattern in range(1 << n):
            lanes = [(pattern >> k) & 1 for k in range(n)]
            for i, j in pairs:
                if lanes[i] > lanes[j]:
                    lanes[i], lanes[j] = lanes[j], lanes[i]
            assert lanes == sorted(lanes), (n, pattern)

    def test_pairs_are_ordered(self):
        assert all(i < j for i, j in batcher_network(8))

    def test_single_lane_empty(self):
        assert batcher_network(1) == []

    def test_bad_n(self):
        with pytest.raises(ValueError):
            batcher_network(0)

    def test_cell_count(self):
        assert compare_exchange_count(4) == len(batcher_network(4))


class TestUnarySort:
    @given(values=value_lists)
    @settings(max_examples=50)
    def test_sorts_values(self, values):
        result = [s.value for s in unary_sort(streams_of(values))]
        assert result == sorted(values)

    @given(values=value_lists)
    @settings(max_examples=30)
    def test_outputs_remain_unary(self, values):
        for stream in unary_sort(streams_of(values)):
            assert isinstance(stream, UnaryBitstream)  # validated on build

    def test_does_not_mutate_input(self):
        streams = streams_of([5, 1, 3])
        originals = [s.value for s in streams]
        unary_sort(streams)
        assert [s.value for s in streams] == originals


class TestUnaryRank:
    @given(values=value_lists)
    @settings(max_examples=40)
    def test_median(self, values):
        rank = len(values) // 2
        result = unary_rank(streams_of(values), rank)
        assert result.value == sorted(values)[rank]

    def test_min_and_max(self):
        streams = streams_of([7, 2, 9, 4])
        assert unary_rank(streams, 0).value == 2
        assert unary_rank(streams, 3).value == 9

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            unary_rank(streams_of([1, 2]), 2)
