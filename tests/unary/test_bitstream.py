"""UnaryBitstream: construction, validation, algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unary import UnaryBitstream


class TestConstruction:
    def test_from_value_trailing(self):
        assert UnaryBitstream.from_value(2, 7).to01() == "0000011"

    def test_from_value_leading(self):
        assert UnaryBitstream.from_value(2, 7, alignment="leading").to01() == "1100000"

    def test_from_value_zero(self):
        assert UnaryBitstream.from_value(0, 5).to01() == "00000"

    def test_from_value_full(self):
        assert UnaryBitstream.from_value(5, 5).to01() == "11111"

    def test_from_value_out_of_range(self):
        with pytest.raises(ValueError):
            UnaryBitstream.from_value(8, 7)
        with pytest.raises(ValueError):
            UnaryBitstream.from_value(-1, 7)

    def test_from01_paper_examples(self):
        # Paper: X1 -> 0000011 is 2; X2 -> 0011111 is 5.
        assert UnaryBitstream.from01("0000011").value == 2
        assert UnaryBitstream.from01("0011111").value == 5

    def test_from01_rejects_non_binary(self):
        with pytest.raises(ValueError):
            UnaryBitstream.from01("0102")

    def test_rejects_non_unary(self):
        with pytest.raises(ValueError):
            UnaryBitstream([0, 1, 0, 1])

    def test_rejects_wrong_alignment(self):
        with pytest.raises(ValueError):
            UnaryBitstream([1, 1, 0, 0])  # leading ones, trailing expected

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            UnaryBitstream(np.zeros((2, 2)))

    def test_rejects_bad_alignment_name(self):
        with pytest.raises(ValueError):
            UnaryBitstream([0, 1], alignment="center")

    def test_bits_read_only(self):
        stream = UnaryBitstream.from_value(2, 4)
        with pytest.raises(ValueError):
            stream.bits[0] = True


class TestValueRoundTrip:
    @given(value=st.integers(0, 16))
    @settings(max_examples=34)
    def test_round_trip(self, value):
        assert UnaryBitstream.from_value(value, 16).value == value

    @given(value=st.integers(0, 12))
    @settings(max_examples=26)
    def test_leading_round_trip(self, value):
        stream = UnaryBitstream.from_value(value, 12, alignment="leading")
        assert stream.value == value


class TestAlgebra:
    @given(a=st.integers(0, 10), b=st.integers(0, 10))
    @settings(max_examples=50)
    def test_and_is_min(self, a, b):
        x = UnaryBitstream.from_value(a, 10)
        y = UnaryBitstream.from_value(b, 10)
        assert (x & y).value == min(a, b)

    @given(a=st.integers(0, 10), b=st.integers(0, 10))
    @settings(max_examples=50)
    def test_or_is_max(self, a, b):
        x = UnaryBitstream.from_value(a, 10)
        y = UnaryBitstream.from_value(b, 10)
        assert (x | y).value == max(a, b)

    def test_complement_value_and_alignment(self):
        stream = UnaryBitstream.from_value(3, 8)
        inverted = stream.complement()
        assert inverted.value == 5
        assert inverted.alignment == "leading"

    def test_double_complement_identity(self):
        stream = UnaryBitstream.from_value(3, 8)
        assert stream.complement().complement() == stream

    def test_mixed_length_rejected(self):
        with pytest.raises(ValueError):
            UnaryBitstream.from_value(1, 4) & UnaryBitstream.from_value(1, 5)

    def test_mixed_alignment_rejected(self):
        with pytest.raises(ValueError):
            (UnaryBitstream.from_value(1, 4)
             & UnaryBitstream.from_value(1, 4, alignment="leading"))

    def test_and_with_non_stream_rejected(self):
        with pytest.raises(TypeError):
            UnaryBitstream.from_value(1, 4) & np.ones(4, dtype=bool)


class TestComparisons:
    def test_ordering(self):
        small = UnaryBitstream.from_value(2, 8)
        large = UnaryBitstream.from_value(6, 8)
        assert small < large
        assert small <= large
        assert large > small
        assert large >= small

    def test_equality_and_hash(self):
        a = UnaryBitstream.from_value(3, 8)
        b = UnaryBitstream.from_value(3, 8)
        assert a == b
        assert hash(a) == hash(b)

    def test_not_equal_other_type(self):
        assert UnaryBitstream.from_value(3, 8) != "00000111"

    def test_len(self):
        assert len(UnaryBitstream.from_value(3, 8)) == 8
