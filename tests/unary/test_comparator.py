"""The proposed unary comparator (paper Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unary import (
    UnaryBitstream,
    compare_values_via_unary,
    unary_ge,
    unary_ge_batch,
    unary_ge_bits,
)


class TestPaperExample:
    def test_fig4_two_vs_five(self):
        data = UnaryBitstream.from01("0000011")   # value 2
        sobol = UnaryBitstream.from01("0011111")  # value 5
        assert unary_ge(data, sobol) is False
        assert unary_ge(sobol, data) is True


class TestExhaustive:
    @pytest.mark.parametrize("n", [1, 2, 7, 16])
    def test_all_pairs(self, n):
        for a in range(n + 1):
            for b in range(n + 1):
                assert compare_values_via_unary(a, b, n) == (a >= b), (a, b, n)


class TestProperties:
    @given(a=st.integers(0, 16), b=st.integers(0, 16))
    @settings(max_examples=60)
    def test_antisymmetry(self, a, b):
        forward = compare_values_via_unary(a, b, 16)
        backward = compare_values_via_unary(b, a, 16)
        assert forward or backward          # total order
        if forward and backward:
            assert a == b

    @given(a=st.integers(0, 16))
    @settings(max_examples=20)
    def test_reflexive(self, a):
        assert compare_values_via_unary(a, a, 16)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            unary_ge(UnaryBitstream.from_value(1, 4),
                     UnaryBitstream.from_value(1, 5))

    def test_alignment_mismatch(self):
        with pytest.raises(ValueError):
            unary_ge(UnaryBitstream.from_value(1, 4),
                     UnaryBitstream.from_value(1, 4, alignment="leading"))

    def test_bits_shape_mismatch(self):
        with pytest.raises(ValueError):
            unary_ge_bits(np.zeros(4, bool), np.zeros(5, bool))


class TestBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(5)
        n = 16
        values = rng.integers(0, n + 1, size=(20, 2))
        first = np.stack([UnaryBitstream.from_value(a, n).bits for a, _ in values])
        second = np.stack([UnaryBitstream.from_value(b, n).bits for _, b in values])
        batch = unary_ge_batch(first, second)
        expected = values[:, 0] >= values[:, 1]
        np.testing.assert_array_equal(batch, expected)

    def test_broadcasting(self):
        n = 8
        one = UnaryBitstream.from_value(4, n).bits
        many = np.stack([UnaryBitstream.from_value(v, n).bits for v in range(n + 1)])
        result = unary_ge_batch(one[None, :], many)
        np.testing.assert_array_equal(result, 4 >= np.arange(n + 1))

    def test_result_drops_stream_axis(self):
        n = 8
        streams = np.zeros((3, 4, n), dtype=bool)
        assert unary_ge_batch(streams, streams).shape == (3, 4)
