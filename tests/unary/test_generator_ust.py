"""Counter+comparator generator and the Unary Stream Table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unary import CounterComparatorGenerator, UnaryBitstream, UnaryStreamTable


class TestCounterComparatorGenerator:
    @given(value=st.integers(0, 16))
    @settings(max_examples=34)
    def test_matches_from_value(self, value):
        gen = CounterComparatorGenerator(4)
        assert gen.generate(value) == UnaryBitstream.from_value(value, 16)

    def test_leading_alignment(self):
        gen = CounterComparatorGenerator(3, alignment="leading")
        assert gen.generate(3).to01() == "11100000"

    def test_cycle_output_consistency(self):
        gen = CounterComparatorGenerator(4)
        bits = [gen.cycle_output(9, k) for k in range(16)]
        assert UnaryBitstream(np.array(bits, dtype=bool)).value == 9

    def test_batch_matches_scalar(self):
        gen = CounterComparatorGenerator(4)
        values = np.array([0, 3, 9, 16])
        batch = gen.generate_batch(values)
        for row, value in zip(batch, values):
            np.testing.assert_array_equal(row, gen.generate(int(value)).bits)

    def test_counter_toggles_formula(self):
        assert CounterComparatorGenerator(4).counter_toggles() == 30
        assert CounterComparatorGenerator(1).counter_toggles() == 2

    def test_value_out_of_range(self):
        with pytest.raises(ValueError):
            CounterComparatorGenerator(3).generate(9)

    def test_cycle_out_of_range(self):
        with pytest.raises(ValueError):
            CounterComparatorGenerator(3).cycle_output(1, 8)

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            CounterComparatorGenerator(0)

    def test_batch_out_of_range(self):
        with pytest.raises(ValueError):
            CounterComparatorGenerator(2).generate_batch(np.array([5]))


class TestUnaryStreamTable:
    def test_default_shape(self):
        table = UnaryStreamTable(16)
        assert table.table.shape == (16, 16)

    @given(code=st.integers(0, 15))
    @settings(max_examples=32)
    def test_fetch_matches_from_value(self, code):
        table = UnaryStreamTable(16)
        assert table.fetch(code) == UnaryBitstream.from_value(code, 16)

    def test_leading_table(self):
        table = UnaryStreamTable(8, alignment="leading")
        assert table.fetch(3).to01() == "11100000"

    def test_fetch_batch_gathers(self):
        table = UnaryStreamTable(16)
        codes = np.array([[0, 5], [15, 9]])
        streams = table.fetch_batch(codes)
        assert streams.shape == (2, 2, 16)
        np.testing.assert_array_equal(streams[0, 1], table.fetch(5).bits)

    def test_memory_bits(self):
        assert UnaryStreamTable(16).memory_bits() == 256

    def test_custom_length(self):
        table = UnaryStreamTable(4, length=8)
        assert table.fetch(3).to01() == "00000111"

    def test_length_too_short(self):
        with pytest.raises(ValueError):
            UnaryStreamTable(16, length=8)

    def test_fetch_out_of_range(self):
        with pytest.raises(ValueError):
            UnaryStreamTable(16).fetch(16)

    def test_fetch_batch_out_of_range(self):
        with pytest.raises(ValueError):
            UnaryStreamTable(16).fetch_batch(np.array([-1]))

    def test_bad_levels(self):
        with pytest.raises(ValueError):
            UnaryStreamTable(1)

    def test_table_read_only(self):
        table = UnaryStreamTable(8)
        with pytest.raises(ValueError):
            table.table[0, 0] = True

    def test_generator_and_table_agree(self):
        gen = CounterComparatorGenerator(4)
        table = UnaryStreamTable(16, length=16)
        for value in range(16):
            assert gen.generate(value) == table.fetch(value)
