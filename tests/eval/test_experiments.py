"""Per-table experiment runners (fast configurations)."""

import pytest

from repro.eval import experiments as ex


class TestTable1:
    def test_rows_and_speedup(self):
        rows = ex.table1_embedded(dims=(1024,))
        assert len(rows) == 2
        base = next(r for r in rows if r.design == "baseline")
        uhd = next(r for r in rows if r.design == "uhd")
        assert base.runtime_s > uhd.runtime_s * 10
        assert base.dynamic_memory_kb > uhd.dynamic_memory_kb * 5
        assert base.code_memory_kb > uhd.code_memory_kb

    def test_paper_values_attached(self):
        rows = ex.table1_embedded(dims=(1024, 8192))
        assert all(r.paper_runtime_s is not None for r in rows)


class TestTable2:
    def test_uhd_wins_energy_and_area_delay(self):
        rows = ex.table2_energy_area(dims=(1024,))
        base = next(r for r in rows if r.design == "baseline")
        uhd = next(r for r in rows if r.design == "uhd")
        assert uhd.energy_per_hv_pj < base.energy_per_hv_pj
        assert uhd.energy_per_image_pj < base.energy_per_image_pj
        assert uhd.area_delay_m2s < base.area_delay_m2s

    def test_energy_scales_with_dim(self):
        rows = ex.table2_energy_area(dims=(1024, 2048))
        uhd = [r for r in rows if r.design == "uhd"]
        assert uhd[1].energy_per_hv_pj > uhd[0].energy_per_hv_pj * 1.8


class TestTable3:
    def test_our_row_ranks_first(self):
        rows = ex.table3_sota()
        measured = next(r for r in rows if "measured" in r.framework)
        others = [r for r in rows if not r.is_this_work]
        assert all(measured.energy_efficiency > r.energy_efficiency
                   for r in others)

    def test_sorted_descending(self):
        rows = ex.table3_sota()
        values = [r.energy_efficiency for r in rows]
        assert values == sorted(values, reverse=True)


class TestCheckpoints:
    def test_all_ratios_favor_uhd(self):
        for result in (ex.checkpoint1_generation(),
                       ex.checkpoint2_comparator(),
                       ex.checkpoint3_binarize()):
            assert result.measured_ratio > 1.0, result.name
            assert result.paper_ratio > 1.0

    def test_checkpoint1_order_of_magnitude(self):
        result = ex.checkpoint1_generation()
        assert result.measured_ratio > 10.0


@pytest.fixture(autouse=True)
def _reduced_scale(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)


class TestAccuracyTables:
    def test_table4_small(self, monkeypatch):
        import repro.eval.accuracy as accuracy_mod
        from repro.eval.accuracy import RunScale

        monkeypatch.setattr(accuracy_mod, "run_scale",
                            lambda: RunScale(150, 80, 3))
        monkeypatch.setattr(ex, "run_scale", lambda: RunScale(150, 80, 3))
        rows = ex.table4_mnist_accuracy(dims=(256,))
        assert len(rows) == 1
        row = rows[0]
        assert row.uhd > 20.0  # far above 10% chance
        assert 1 in row.baseline_by_checkpoint

    def test_table5_small(self, monkeypatch):
        import repro.eval.accuracy as accuracy_mod
        from repro.eval.accuracy import RunScale

        monkeypatch.setattr(accuracy_mod, "run_scale",
                            lambda: RunScale(60, 30, 2))
        monkeypatch.setattr(ex, "run_scale", lambda: RunScale(60, 30, 2))
        rows = ex.table5_datasets(dims=(128,), datasets=("breast",))
        assert len(rows) == 1
        assert rows[0].dataset == "breast"
        assert rows[0].uhd > 30.0  # 2-class chance is 50, tiny data is noisy

    def test_fig6a_series(self, monkeypatch):
        import repro.eval.accuracy as accuracy_mod
        from repro.eval.accuracy import RunScale

        monkeypatch.setattr(accuracy_mod, "run_scale",
                            lambda: RunScale(120, 60, 4))
        monkeypatch.setattr(ex, "run_scale", lambda: RunScale(120, 60, 4))
        series = ex.fig6a_iteration_series(dim=128)
        assert len(series) == 4
        assert all(0.0 <= a <= 100.0 for a in series)

    def test_fig6c_series(self, monkeypatch):
        import repro.eval.accuracy as accuracy_mod
        from repro.eval.accuracy import RunScale

        monkeypatch.setattr(accuracy_mod, "run_scale",
                            lambda: RunScale(120, 60, 2))
        monkeypatch.setattr(ex, "run_scale", lambda: RunScale(120, 60, 2))
        result = ex.fig6c_uhd_series(dims=(128, 256))
        assert set(result) == {128, 256}

    def test_fig6b_prior_art(self):
        points = ex.fig6b_prior_art()
        assert len(points) == 4
        assert all(0 < p.accuracy_percent < 100 for p in points)
