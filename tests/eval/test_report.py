"""EXPERIMENTS report assembly."""

from repro.eval.report import RESULT_SECTIONS, build_experiments_markdown


class TestReport:
    def test_missing_results_flagged(self, tmp_path):
        text = build_experiments_markdown(tmp_path)
        assert text.count("*not yet generated*") == len(RESULT_SECTIONS)

    def test_present_results_embedded(self, tmp_path):
        (tmp_path / "table1_embedded.txt").write_text("RESULT CONTENT 42")
        text = build_experiments_markdown(tmp_path)
        assert "RESULT CONTENT 42" in text
        assert text.count("*not yet generated*") == len(RESULT_SECTIONS) - 1

    def test_section_order(self, tmp_path):
        text = build_experiments_markdown(tmp_path)
        positions = [text.index(heading) for _, heading in RESULT_SECTIONS]
        assert positions == sorted(positions)

    def test_cli_report_command(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 0
        assert "Measured results" in capsys.readouterr().out
