"""Accuracy helpers, table rendering, figure export."""

import numpy as np
import pytest

from repro.eval import (
    RunScale,
    ascii_chart,
    baseline_accuracy,
    baseline_iteration_accuracies,
    prepare_dataset,
    render_table,
    run_scale,
    uhd_accuracy,
    write_series_csv,
)


class TestRunScale:
    def test_default_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        scale = run_scale()
        assert scale.n_train <= 1000

    def test_full_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        scale = run_scale()
        assert scale.n_train >= 5000
        assert scale.max_iterations == 100


@pytest.fixture(scope="module")
def small_data():
    return prepare_dataset("mnist", RunScale(200, 100, 3), seed=1)


class TestAccuracyHelpers:
    def test_uhd_beats_chance(self, small_data):
        assert uhd_accuracy(small_data, dim=256) > 0.3

    def test_uhd_deterministic(self, small_data):
        assert uhd_accuracy(small_data, dim=128) == uhd_accuracy(small_data, dim=128)

    def test_baseline_beats_chance(self, small_data):
        assert baseline_accuracy(small_data, dim=256, seed=1) > 0.3

    def test_baseline_seed_sensitivity(self, small_data):
        a = baseline_accuracy(small_data, dim=128, seed=0)
        b = baseline_accuracy(small_data, dim=128, seed=1)
        # Different draws usually differ; equality would only happen by
        # coincidence of every prediction, so just check both are sane.
        assert 0.0 <= a <= 1.0 and 0.0 <= b <= 1.0

    def test_iteration_series_length(self, small_data):
        series = baseline_iteration_accuracies(small_data, dim=128, iterations=3)
        assert len(series) == 3
        assert all(0.0 <= a <= 1.0 for a in series)

    def test_iteration_series_validation(self, small_data):
        with pytest.raises(ValueError):
            baseline_iteration_accuracies(small_data, dim=128, iterations=0)

    def test_prepare_dataset_grayscales(self):
        data = prepare_dataset("blood", RunScale(16, 8, 1), seed=0)
        assert not data.is_rgb


class TestRenderTable:
    def test_basic(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 0.0001]])
        assert "a" in text and "x" in text
        assert "|" in text

    def test_title(self):
        text = render_table(["h"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["v"], [[123456.789]])
        assert "e+" in text  # scientific for large magnitudes

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestFigures:
    def test_ascii_chart(self):
        chart = ascii_chart([1.0, 2.0, 3.0, 2.0], label="demo")
        assert chart.startswith("demo:")
        assert "min=1.00" in chart

    def test_ascii_chart_constant_series(self):
        chart = ascii_chart([5.0, 5.0])
        assert "min=5.00 max=5.00" in chart

    def test_ascii_chart_empty(self):
        with pytest.raises(ValueError):
            ascii_chart([])

    def test_write_series_csv(self, tmp_path):
        path = write_series_csv(tmp_path / "sub" / "fig.csv",
                                ["i", "acc"], [[1, 0.5], [2, 0.6]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "i,acc"
        assert len(content) == 3
