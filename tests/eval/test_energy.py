"""Unit tests for the per-operation energy compositions (Tables II/III)."""

import pytest

from repro.eval import energy


class TestPerOpEnergies:
    def test_unary_compare_positive(self):
        assert energy.unary_compare_energy_fj(16) > 0.0

    def test_ust_fetch_positive(self):
        assert energy.ust_fetch_energy_fj(16) > 0.0

    def test_fetch_cheaper_than_counter_generation(self):
        per_bit_fetch = energy.ust_fetch_energy_fj(16) / 16
        per_bit_counter = energy.counter_generator_energy_per_bit_fj(4)
        assert per_bit_counter > 10 * per_bit_fetch

    def test_lfsr_generation_grows_with_compare_width(self):
        narrow = energy.lfsr_generate_energy_fj(6)
        wide = energy.lfsr_generate_energy_fj(13)
        assert wide > narrow

    def test_bind_is_cheap(self):
        assert 0.0 < energy.bind_energy_fj() < energy.unary_compare_energy_fj(16)

    def test_binarizer_masking_cheaper(self):
        masking = energy.binarizer_energy_per_feature_fj(256, "masking")
        comparator = energy.binarizer_energy_per_feature_fj(256, "comparator")
        assert masking < comparator

    def test_binarizer_bad_design(self):
        with pytest.raises(ValueError):
            energy.binarizer_energy_per_feature_fj(64, "magic")


class TestCompositions:
    def test_hv_energy_linear_in_dim(self):
        e1 = energy.uhd_hv_energy_fj(1024)
        e2 = energy.uhd_hv_energy_fj(2048)
        assert e2 / e1 == pytest.approx(2.0, rel=0.01)

    def test_baseline_superlinear_in_dim(self):
        # Comparator width grows with log2(D), so the ratio exceeds 8.
        e1 = energy.baseline_hv_energy_fj(1024)
        e8 = energy.baseline_hv_energy_fj(8192)
        assert e8 / e1 > 8.0

    def test_uhd_image_includes_binarizers(self):
        hv_only = 784 * energy.uhd_hv_energy_fj(512)
        with_binarize = energy.uhd_image_energy_fj(512, 784)
        assert with_binarize > hv_only

    def test_uhd_beats_baseline_everywhere(self):
        for dim in (512, 1024, 4096):
            assert (energy.uhd_image_energy_fj(dim)
                    < energy.baseline_image_energy_fj(dim))

    def test_caching_returns_identical(self):
        assert (energy.unary_compare_energy_fj(16)
                == energy.unary_compare_energy_fj(16))
