"""Similarity kernels and winner-take-all."""

import numpy as np
import pytest

from repro.hdc import (
    classify,
    cosine_similarity,
    dot_similarity,
    hamming_similarity,
    random_hypervectors,
)


class TestCosine:
    def test_self_similarity(self):
        hv = random_hypervectors(1, 256, np.random.default_rng(0))
        assert cosine_similarity(hv, hv)[0, 0] == pytest.approx(1.0)

    def test_opposite(self):
        hv = random_hypervectors(1, 256, np.random.default_rng(1))
        assert cosine_similarity(hv, -hv)[0, 0] == pytest.approx(-1.0)

    def test_orthogonal(self):
        a = np.array([[1, 1, -1, -1]])
        b = np.array([[1, -1, 1, -1]])
        assert cosine_similarity(a, b)[0, 0] == pytest.approx(0.0)

    def test_batched_shape(self):
        rng = np.random.default_rng(2)
        q = random_hypervectors(5, 64, rng)
        r = random_hypervectors(3, 64, rng)
        assert cosine_similarity(q, r).shape == (5, 3)

    def test_vector_promoted(self):
        rng = np.random.default_rng(3)
        q = random_hypervectors(1, 64, rng)[0]
        r = random_hypervectors(3, 64, rng)
        assert cosine_similarity(q, r).shape == (1, 3)

    def test_zero_vector_is_neutral(self):
        zero = np.zeros((1, 8))
        other = np.ones((1, 8))
        assert cosine_similarity(zero, other)[0, 0] == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.ones((1, 4)), np.ones((1, 5)))

    def test_scale_invariance(self):
        rng = np.random.default_rng(4)
        q = rng.normal(size=(2, 32))
        r = rng.normal(size=(3, 32))
        np.testing.assert_allclose(
            cosine_similarity(q, r), cosine_similarity(q * 7.5, r * 0.2)
        )

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.ones((1, 2, 3)), np.ones((1, 3)))


class TestDotAndHamming:
    def test_dot_known(self):
        a = np.array([[1, 1, -1]])
        b = np.array([[1, -1, -1]])
        assert dot_similarity(a, b)[0, 0] == 1.0

    def test_hamming_known(self):
        a = np.array([[1, 1, -1, -1]])
        b = np.array([[1, -1, -1, -1]])
        assert hamming_similarity(a, b)[0, 0] == 0.75

    def test_rankings_agree_on_bipolar(self):
        # On +-1 vectors all norms are equal, so the three kernels are
        # monotone transforms of each other.  Exact dot-product ties can be
        # broken differently by cosine's float division, so agreement is
        # asserted on the similarity *values* at each winner, not indices.
        rng = np.random.default_rng(5)
        q = random_hypervectors(4, 512, rng)
        r = random_hypervectors(6, 512, rng)
        cos = cosine_similarity(q, r)
        dot = dot_similarity(q, r)
        ham = hamming_similarity(q, r)
        for row in range(q.shape[0]):
            assert dot[row, cos[row].argmax()] == dot[row].max()
            assert dot[row, ham[row].argmax()] == dot[row].max()

    def test_dot_mismatch(self):
        with pytest.raises(ValueError):
            dot_similarity(np.ones((1, 4)), np.ones((1, 5)))

    def test_hamming_mismatch(self):
        with pytest.raises(ValueError):
            hamming_similarity(np.ones((1, 4)), np.ones((1, 5)))


class TestClassify:
    def test_argmax(self):
        sims = np.array([[0.1, 0.9, 0.3], [0.8, 0.2, 0.1]])
        np.testing.assert_array_equal(classify(sims), [1, 0])

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            classify(np.array([0.1, 0.9]))


class TestHammingMatmulRegression:
    """The matmul fast path must equal the old broadcast implementation."""

    @staticmethod
    def _legacy(q, r):
        q = np.atleast_2d(np.asarray(q))
        r = np.atleast_2d(np.asarray(r))
        agreements = (q[:, None, :] == r[None, :, :]).sum(axis=2)
        return agreements / q.shape[1]

    @pytest.mark.parametrize("dim", [1, 5, 64, 127])
    def test_bipolar_matches_legacy(self, dim):
        rng = np.random.default_rng(17)
        q = random_hypervectors(7, dim, rng)
        r = random_hypervectors(4, dim, rng)
        np.testing.assert_array_equal(hamming_similarity(q, r), self._legacy(q, r))

    def test_float_bipolar_matches_legacy(self):
        rng = np.random.default_rng(18)
        q = random_hypervectors(3, 32, rng).astype(np.float64)
        r = random_hypervectors(2, 32, rng).astype(np.float64)
        np.testing.assert_array_equal(hamming_similarity(q, r), self._legacy(q, r))

    def test_non_bipolar_falls_back(self):
        q = np.array([[0, 1, 2, 3]])
        r = np.array([[0, 1, 2, 4], [3, 2, 1, 0]])
        np.testing.assert_array_equal(hamming_similarity(q, r), self._legacy(q, r))
        assert hamming_similarity(q, r)[0, 0] == pytest.approx(0.75)

    def test_identical_and_opposite_extremes(self):
        hv = random_hypervectors(1, 100, np.random.default_rng(19))
        assert hamming_similarity(hv, hv)[0, 0] == pytest.approx(1.0)
        assert hamming_similarity(hv, -hv)[0, 0] == pytest.approx(0.0)
