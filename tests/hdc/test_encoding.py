"""Record and n-gram encoders."""

import numpy as np
import pytest

from repro.hdc import (
    LevelItemMemory,
    NGramEncoder,
    RandomItemMemory,
    RecordEncoder,
    permute,
    quantize_levels,
)


@pytest.fixture()
def small_encoder():
    rng = np.random.default_rng(0)
    positions = RandomItemMemory(6, 64, rng)
    levels = LevelItemMemory(4, 64, rng)
    return RecordEncoder(positions, levels)


class TestQuantizeLevels:
    def test_uint8(self):
        out = quantize_levels(np.array([0, 128, 255], dtype=np.uint8), 16)
        np.testing.assert_array_equal(out, [0, 8, 15])

    def test_float_clipped(self):
        out = quantize_levels(np.array([-1.0, 0.5, 3.0]), 4)
        np.testing.assert_array_equal(out, [0, 2, 3])

    def test_preserves_shape(self):
        assert quantize_levels(np.zeros((2, 3, 4), dtype=np.uint8), 8).shape == (2, 3, 4)


class TestRecordEncoder:
    def test_manual_accumulation(self, small_encoder):
        levels = np.array([0, 1, 2, 3, 0, 1])
        expected = np.zeros(64, dtype=np.int64)
        for p, lv in enumerate(levels):
            expected += (small_encoder.positions.vector(p).astype(np.int64)
                         * small_encoder.level_memory.vector(lv))
        np.testing.assert_array_equal(small_encoder.encode(levels), expected)

    def test_batch_matches_single(self, small_encoder):
        rng = np.random.default_rng(1)
        batch = rng.integers(0, 4, size=(9, 6))
        encoded = small_encoder.encode_batch(batch, chunk=4)
        for row, levels in zip(encoded, batch):
            np.testing.assert_array_equal(row, small_encoder.encode(levels))

    def test_binarized(self, small_encoder):
        levels = np.array([0, 1, 2, 3, 0, 1])
        out = small_encoder.encode_binarized(levels)
        assert set(np.unique(out)) <= {-1, 1}

    def test_wrong_pixel_count(self, small_encoder):
        with pytest.raises(ValueError):
            small_encoder.encode(np.array([0, 1]))
        with pytest.raises(ValueError):
            small_encoder.encode_batch(np.zeros((2, 3), dtype=int))

    def test_dimension_mismatch_rejected(self):
        rng = np.random.default_rng(2)
        positions = RandomItemMemory(4, 32, rng)
        levels = LevelItemMemory(4, 64, rng)
        with pytest.raises(ValueError):
            RecordEncoder(positions, levels)

    def test_accumulator_bounded_by_pixels(self, small_encoder):
        levels = np.zeros(6, dtype=int)
        encoded = small_encoder.encode(levels)
        assert np.abs(encoded).max() <= 6


class TestNGramEncoder:
    @pytest.fixture()
    def ngram(self):
        items = RandomItemMemory(5, 128, np.random.default_rng(3))
        return NGramEncoder(items, n=3)

    def test_ngram_manual(self, ngram):
        symbols = np.array([0, 1, 2])
        expected = (
            permute(ngram.items.vector(0), 2).astype(np.int64)
            * permute(ngram.items.vector(1), 1)
            * ngram.items.vector(2)
        )
        np.testing.assert_array_equal(ngram.encode_ngram(symbols), expected)

    def test_sequence_accumulates_all_ngrams(self, ngram):
        seq = np.array([0, 1, 2, 3])
        total = ngram.encode(seq)
        manual = (ngram.encode_ngram(seq[:3]).astype(np.int64)
                  + ngram.encode_ngram(seq[1:]))
        np.testing.assert_array_equal(total, manual)

    def test_order_sensitivity(self, ngram):
        forward = ngram.encode_ngram(np.array([0, 1, 2]))
        backward = ngram.encode_ngram(np.array([2, 1, 0]))
        assert not np.array_equal(forward, backward)

    def test_wrong_ngram_size(self, ngram):
        with pytest.raises(ValueError):
            ngram.encode_ngram(np.array([0, 1]))

    def test_sequence_too_short(self, ngram):
        with pytest.raises(ValueError):
            ngram.encode(np.array([0, 1]))

    def test_bad_n(self):
        items = RandomItemMemory(5, 16, np.random.default_rng(4))
        with pytest.raises(ValueError):
            NGramEncoder(items, n=0)
