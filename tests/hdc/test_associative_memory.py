"""Associative (cleanup) memory."""

import numpy as np
import pytest

from repro.hdc import AssociativeMemory, bind, random_hypervectors


@pytest.fixture()
def memory():
    rng = np.random.default_rng(0)
    mem = AssociativeMemory(1024)
    vectors = random_hypervectors(5, 1024, rng)
    for index, vector in enumerate(vectors):
        mem.store(f"item{index}", vector)
    return mem, vectors


class TestStore:
    def test_len_and_contains(self, memory):
        mem, _ = memory
        assert len(mem) == 5
        assert "item3" in mem
        assert "missing" not in mem

    def test_replace(self, memory):
        mem, vectors = memory
        replacement = -vectors[0]
        mem.store("item0", replacement)
        assert len(mem) == 5
        np.testing.assert_array_equal(mem.vector("item0"), replacement)

    def test_wrong_shape(self, memory):
        mem, _ = memory
        with pytest.raises(ValueError):
            mem.store("bad", np.ones(10))

    def test_defensive_copy(self, memory):
        mem, _ = memory
        external = np.ones(1024, dtype=np.int8)
        mem.store("mine", external)
        external[:] = -1
        assert (mem.vector("mine") == 1).all()

    def test_unknown_name(self, memory):
        mem, _ = memory
        with pytest.raises(KeyError):
            mem.vector("missing")


class TestRecall:
    def test_exact_recall(self, memory):
        mem, vectors = memory
        name, similarity = mem.recall(vectors[2])[0]
        assert name == "item2"
        assert similarity == pytest.approx(1.0)

    def test_noisy_recall(self, memory):
        mem, vectors = memory
        rng = np.random.default_rng(1)
        noisy = vectors[4].astype(np.int64).copy()
        flips = rng.random(1024) < 0.25
        noisy[flips] *= -1
        assert mem.recall(noisy)[0][0] == "item4"

    def test_top_k_ordering(self, memory):
        mem, vectors = memory
        results = mem.recall(vectors[1], k=3)
        assert len(results) == 3
        sims = [s for _, s in results]
        assert sims == sorted(sims, reverse=True)

    def test_cleanup_after_unbinding(self, memory):
        mem, vectors = memory
        rng = np.random.default_rng(2)
        key = random_hypervectors(1, 1024, rng)[0]
        bound = bind(key, vectors[3])
        recovered = mem.cleanup(bind(bound, key))  # unbind, then clean
        np.testing.assert_array_equal(recovered, vectors[3])

    def test_empty_memory(self):
        mem = AssociativeMemory(64)
        with pytest.raises(RuntimeError):
            mem.recall(np.ones(64))

    def test_bad_k(self, memory):
        mem, vectors = memory
        with pytest.raises(ValueError):
            mem.recall(vectors[0], k=6)

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            AssociativeMemory(0)
