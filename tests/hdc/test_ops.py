"""Bipolar hypervector algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hdc import (
    binarize,
    bind,
    bundle,
    ensure_bipolar,
    from_bits,
    permute,
    random_hypervectors,
    to_bits,
)

bipolar = hnp.arrays(
    np.int8, st.integers(4, 64),
    elements=st.sampled_from([np.int8(-1), np.int8(1)]),
)


class TestEnsureBipolar:
    def test_accepts_plus_minus_one(self):
        hv = np.array([1, -1, 1], dtype=np.int64)
        assert ensure_bipolar(hv).dtype == np.int8

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ensure_bipolar(np.array([1, 0, -1]))

    def test_rejects_two(self):
        with pytest.raises(ValueError):
            ensure_bipolar(np.array([2, -1]))


class TestBind:
    @given(a=bipolar)
    @settings(max_examples=30)
    def test_self_inverse(self, a):
        np.testing.assert_array_equal(bind(a, a), np.ones_like(a))

    @given(a=bipolar)
    @settings(max_examples=30)
    def test_identity(self, a):
        ones = np.ones_like(a)
        np.testing.assert_array_equal(bind(a, ones), a)

    def test_commutative(self):
        rng = np.random.default_rng(0)
        a = random_hypervectors(1, 64, rng)[0]
        b = random_hypervectors(1, 64, rng)[0]
        np.testing.assert_array_equal(bind(a, b), bind(b, a))

    def test_associative(self):
        rng = np.random.default_rng(1)
        a, b, c = random_hypervectors(3, 64, rng)
        np.testing.assert_array_equal(bind(bind(a, b), c), bind(a, bind(b, c)))

    def test_unbinding_recovers(self):
        rng = np.random.default_rng(2)
        a, b = random_hypervectors(2, 128, rng)
        np.testing.assert_array_equal(bind(bind(a, b), b), a)

    def test_is_xor_in_bit_domain(self):
        rng = np.random.default_rng(3)
        a, b = random_hypervectors(2, 64, rng)
        xor_bits = to_bits(a) ^ to_bits(b)
        # XOR of bits corresponds to *disagreement*; multiply of +-1 gives
        # +1 where equal. So bind == from_bits(NOT xor).
        np.testing.assert_array_equal(bind(a, b), from_bits(1 - xor_bits))


class TestBundle:
    def test_sum_along_axis(self):
        stack = np.array([[1, -1], [1, 1], [-1, 1]], dtype=np.int8)
        np.testing.assert_array_equal(bundle(stack), [1, 1])

    def test_dtype_is_wide(self):
        stack = np.ones((100_000, 2), dtype=np.int8)
        assert bundle(stack).dtype == np.int64
        assert bundle(stack)[0] == 100_000

    def test_majority_preserves_similarity(self):
        rng = np.random.default_rng(4)
        vectors = random_hypervectors(5, 2048, rng)
        majority = binarize(bundle(vectors)).astype(np.int64)
        for vector in vectors:
            similarity = float(majority @ vector.astype(np.int64)) / 2048
            assert similarity > 0.15  # each constituent stays similar


class TestBinarize:
    def test_sign(self):
        np.testing.assert_array_equal(
            binarize(np.array([-5, 3, -1])), [-1, 1, -1]
        )

    def test_tie_goes_positive(self):
        assert binarize(np.array([0]))[0] == 1

    def test_threshold_shift(self):
        np.testing.assert_array_equal(
            binarize(np.array([2, 4]), threshold=3), [-1, 1]
        )

    def test_output_dtype(self):
        assert binarize(np.array([1.5, -0.5])).dtype == np.int8


class TestPermute:
    @given(a=bipolar, shifts=st.integers(-8, 8))
    @settings(max_examples=30)
    def test_roundtrip(self, a, shifts):
        np.testing.assert_array_equal(permute(permute(a, shifts), -shifts), a)

    def test_shift_one(self):
        hv = np.array([1, -1, 1, 1], dtype=np.int8)
        np.testing.assert_array_equal(permute(hv, 1), [1, 1, -1, 1])

    def test_preserves_sum(self):
        rng = np.random.default_rng(5)
        hv = random_hypervectors(1, 64, rng)[0]
        assert permute(hv, 13).sum() == hv.sum()


class TestBitsConversion:
    @given(a=bipolar)
    @settings(max_examples=30)
    def test_round_trip(self, a):
        np.testing.assert_array_equal(from_bits(to_bits(a)), a)

    def test_from_bits_rejects_other(self):
        with pytest.raises(ValueError):
            from_bits(np.array([0, 1, 2]))


class TestRandomHypervectors:
    def test_shape_dtype(self):
        hv = random_hypervectors(3, 100, np.random.default_rng(0))
        assert hv.shape == (3, 100)
        assert hv.dtype == np.int8

    def test_balanced(self):
        hv = random_hypervectors(1, 100_000, np.random.default_rng(1))[0]
        assert abs(int(hv.sum())) < 1500  # ~4.7 sigma

    def test_deterministic_per_seed(self):
        a = random_hypervectors(2, 64, np.random.default_rng(7))
        b = random_hypervectors(2, 64, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            random_hypervectors(-1, 8, np.random.default_rng(0))
        with pytest.raises(ValueError):
            random_hypervectors(1, 0, np.random.default_rng(0))
