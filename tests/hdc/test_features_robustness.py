"""Tabular HDC encoder and HDC noise robustness."""

import numpy as np
import pytest

from repro.hdc import TabularHDC
from repro.core import UHDClassifier, UHDConfig


def blobs(n_per_class=60, num_features=10, separation=2.5, seed=0):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(0.0, 1.0, (n_per_class, num_features))
    x1 = rng.normal(separation, 1.0, (n_per_class, num_features))
    features = np.vstack([x0, x1])
    labels = np.array([0] * n_per_class + [1] * n_per_class)
    order = rng.permutation(labels.size)
    return features[order], labels[order]


class TestTabularHDC:
    @pytest.mark.parametrize("encoding", ["uhd", "record"])
    def test_separable_blobs(self, encoding):
        features, labels = blobs()
        model = TabularHDC(10, 2, encoding=encoding, dim=512)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.9

    def test_generalizes(self):
        train_f, train_l = blobs(seed=1)
        test_f, test_l = blobs(seed=2)
        model = TabularHDC(10, 2, dim=512).fit(train_f, train_l)
        assert model.score(test_f, test_l) > 0.85

    def test_constant_feature_handled(self):
        features, labels = blobs()
        features[:, 3] = 7.0  # zero-variance column
        model = TabularHDC(10, 2, dim=256).fit(features, labels)
        assert model.score(features, labels) > 0.8

    def test_predict_before_fit(self):
        model = TabularHDC(4, 2)
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 4)))

    def test_bad_encoding(self):
        with pytest.raises(ValueError):
            TabularHDC(4, 2, encoding="spatial")

    def test_wrong_feature_count(self):
        features, labels = blobs()
        model = TabularHDC(11, 2)
        with pytest.raises(ValueError):
            model.fit(features, labels)

    def test_scaling_clips_unseen_range(self):
        train_f, train_l = blobs(seed=3)
        model = TabularHDC(10, 2, dim=256).fit(train_f, train_l)
        extreme = train_f * 100.0  # far outside the learned range
        predictions = model.predict(extreme)
        assert predictions.shape == (train_f.shape[0],)


class TestNoiseRobustness:
    """The paper's §III robustness claim: "hypervector generation may
    experience some flipped bits ... the accumulated values yield large
    scalars and the sign of accumulation is not easily affected."  We
    inject bit flips at the *level-bit* stage (noisy comparator outputs)
    and check the accumulation absorbs them."""

    @pytest.fixture(scope="class")
    def fitted(self, tiny_digits):
        model = UHDClassifier(784, 10, UHDConfig(dim=1024))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        return model, tiny_digits.test_images, tiny_digits.test_labels

    def _encode_with_bit_flips(self, model, images, flip_fraction, seed=0):
        """Re-encode images with a fraction of level bits flipped."""
        from repro.lds.quantize import quantize_intensity

        rng = np.random.default_rng(seed)
        enc = model.encoder
        codes = enc.quantized_codes
        flat = images.reshape(images.shape[0], -1)
        pixel_codes = quantize_intensity(flat, model.config.levels)
        out = np.empty((flat.shape[0], enc.dim), dtype=np.int64)
        for index in range(flat.shape[0]):
            ge = pixel_codes[index][:, None] >= codes  # (H, D) level bits
            flips = rng.random(ge.shape) < flip_fraction
            noisy = ge ^ flips
            out[index] = 2 * noisy.sum(axis=0, dtype=np.int64) - flat.shape[1]
        return out

    def _accuracy(self, fitted, flip_fraction):
        model, images, labels = fitted
        encoded = self._encode_with_bit_flips(model, images, flip_fraction)
        return float(np.mean(model.classifier.predict(encoded) == labels))

    def test_clean_matches_normal_path(self, fitted):
        model, images, labels = fitted
        encoded = self._encode_with_bit_flips(model, images, 0.0)
        np.testing.assert_array_equal(encoded,
                                      model.encoder.encode_batch(images))

    def test_graceful_degradation(self, fitted):
        clean = self._accuracy(fitted, 0.0)
        light = self._accuracy(fitted, 0.02)
        moderate = self._accuracy(fitted, 0.10)
        assert light > clean - 0.10   # 2% flipped comparator bits: negligible
        assert moderate > 0.25        # 10%: degraded but far above chance

    def test_symmetric_noise_cancels_in_expectation(self, fitted):
        model, images, _ = fitted
        clean = model.encoder.encode_batch(images[:10]).astype(np.float64)
        noisy = self._encode_with_bit_flips(model, images[:10], 0.05)
        # Flips push each accumulator toward 0 by ~2*eps*|V|; correlation
        # with the clean encoding stays overwhelming.
        for c, n in zip(clean, noisy.astype(np.float64)):
            corr = np.corrcoef(c, n)[0, 1]
            assert corr > 0.9
