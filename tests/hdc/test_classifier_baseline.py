"""Centroid classifier and the end-to-end baseline model."""

import numpy as np
import pytest

from repro.hdc import (
    BaselineConfig,
    BaselineHDC,
    CentroidClassifier,
    random_hypervectors,
)


def separable_data(num_classes=3, dim=512, per_class=20, noise=0.1, seed=0):
    """Noisy copies of orthogonal prototypes — trivially separable."""
    rng = np.random.default_rng(seed)
    prototypes = random_hypervectors(num_classes, dim, rng)
    encoded, labels = [], []
    for cls in range(num_classes):
        for _ in range(per_class):
            noisy = prototypes[cls].astype(np.int64).copy()
            flips = rng.random(dim) < noise
            noisy[flips] *= -1
            encoded.append(noisy)
            labels.append(cls)
    return np.array(encoded), np.array(labels)


class TestCentroidClassifier:
    def test_fit_predict_separable(self):
        encoded, labels = separable_data()
        clf = CentroidClassifier(3, 512).fit(encoded, labels)
        assert clf.score(encoded, labels) > 0.95

    def test_binarized_policy_also_separates(self):
        encoded, labels = separable_data()
        clf = CentroidClassifier(3, 512, binarize=True).fit(encoded, labels)
        assert clf.score(encoded, labels) > 0.95

    def test_class_hypervectors_shape(self):
        encoded, labels = separable_data()
        clf = CentroidClassifier(3, 512).fit(encoded, labels)
        assert clf.class_hypervectors.shape == (3, 512)
        assert set(np.unique(clf.class_hypervectors)) <= {-1, 1}

    def test_accumulators_read_only(self):
        encoded, labels = separable_data()
        clf = CentroidClassifier(3, 512).fit(encoded, labels)
        with pytest.raises(ValueError):
            clf.accumulators[0, 0] = 7

    def test_incremental_fit_accumulates(self):
        encoded, labels = separable_data()
        whole = CentroidClassifier(3, 512).fit(encoded, labels)
        split = CentroidClassifier(3, 512)
        split.fit(encoded[:30], labels[:30])
        split.fit(encoded[30:], labels[30:])
        np.testing.assert_array_equal(whole.accumulators, split.accumulators)

    def test_similarities_shape(self):
        encoded, labels = separable_data()
        clf = CentroidClassifier(3, 512).fit(encoded, labels)
        assert clf.similarities(encoded[:5]).shape == (5, 3)

    def test_retrain_returns_corrections(self):
        encoded, labels = separable_data(noise=0.4)
        clf = CentroidClassifier(3, 512).fit(encoded, labels)
        before = clf.score(encoded, labels)
        clf.retrain(encoded, labels, epochs=5)
        assert clf.score(encoded, labels) >= before

    def test_retrain_zero_epochs(self):
        encoded, labels = separable_data()
        clf = CentroidClassifier(3, 512).fit(encoded, labels)
        assert clf.retrain(encoded, labels, epochs=0) == 0

    def test_unfitted_raises(self):
        clf = CentroidClassifier(3, 512)
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((1, 512)))
        with pytest.raises(RuntimeError):
            _ = clf.class_hypervectors

    def test_bad_labels(self):
        clf = CentroidClassifier(3, 8)
        with pytest.raises(ValueError):
            clf.fit(np.zeros((2, 8)), np.array([0, 3]))

    def test_shape_mismatches(self):
        clf = CentroidClassifier(3, 8)
        with pytest.raises(ValueError):
            clf.fit(np.zeros((2, 9)), np.array([0, 1]))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((2, 8)), np.array([0]))

    def test_empty_score_rejected(self):
        encoded, labels = separable_data()
        clf = CentroidClassifier(3, 512).fit(encoded, labels)
        with pytest.raises(ValueError):
            clf.score(np.zeros((0, 512)), np.array([], dtype=int))

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            CentroidClassifier(1, 8)
        with pytest.raises(ValueError):
            CentroidClassifier(2, 0)


class TestBaselineHDC:
    def test_end_to_end_beats_chance(self, tiny_digits):
        model = BaselineHDC(784, 10, BaselineConfig(dim=512, seed=1))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        acc = model.score(tiny_digits.test_images, tiny_digits.test_labels)
        assert acc > 0.3  # 10-class chance is 0.1

    def test_same_seed_same_model(self, tiny_digits):
        results = []
        for _ in range(2):
            model = BaselineHDC(784, 10, BaselineConfig(dim=256, seed=5))
            model.fit(tiny_digits.train_images, tiny_digits.train_labels)
            results.append(model.predict(tiny_digits.test_images))
        np.testing.assert_array_equal(results[0], results[1])

    def test_reseed_changes_predictions(self, tiny_digits):
        model = BaselineHDC(784, 10, BaselineConfig(dim=256, seed=0))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        first = model.predict(tiny_digits.test_images)
        model.reseed(99)
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        second = model.predict(tiny_digits.test_images)
        assert not np.array_equal(first, second)

    def test_reseed_invalidates_fit(self, tiny_digits):
        model = BaselineHDC(784, 10, BaselineConfig(dim=256))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        model.reseed(1)
        with pytest.raises(RuntimeError):
            model.predict(tiny_digits.test_images)

    def test_unfitted_raises(self, tiny_digits):
        model = BaselineHDC(784, 10, BaselineConfig(dim=256))
        with pytest.raises(RuntimeError):
            model.score(tiny_digits.test_images, tiny_digits.test_labels)

    def test_wrong_pixel_count(self, tiny_digits):
        model = BaselineHDC(100, 10, BaselineConfig(dim=256))
        with pytest.raises(ValueError):
            model.fit(tiny_digits.train_images, tiny_digits.train_labels)

    def test_level_scheme_flip_works(self, tiny_digits):
        model = BaselineHDC(784, 10,
                            BaselineConfig(dim=512, seed=1, level_scheme="flip"))
        model.fit(tiny_digits.train_images, tiny_digits.train_labels)
        assert model.score(tiny_digits.test_images, tiny_digits.test_labels) > 0.3

    def test_bad_config(self):
        with pytest.raises(ValueError):
            BaselineConfig(dim=0)
        with pytest.raises(ValueError):
            BaselineConfig(levels=1)

    def test_bad_pixels(self):
        with pytest.raises(ValueError):
            BaselineHDC(0, 10, BaselineConfig())
