"""LFSR software model."""

import numpy as np
import pytest

from repro.hdc import LFSR, MAXIMAL_TAPS, lfsr_uniform_matrix


class TestPeriod:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8, 10, 12])
    def test_maximal_length(self, width):
        assert LFSR(width).period() == (1 << width) - 1

    def test_visits_all_nonzero_states(self):
        width = 6
        lfsr = LFSR(width)
        seen = {lfsr.state}
        for _ in range((1 << width) - 2):
            seen.add(lfsr.next_state())
        assert len(seen) == (1 << width) - 1
        assert 0 not in seen

    def test_non_maximal_taps_detected(self):
        # taps (4, 2) are not maximal for width 4.
        lfsr = LFSR(4, taps=(4, 2))
        assert lfsr.period() < 15


class TestStep:
    def test_deterministic(self):
        a = LFSR(8, seed=5)
        b = LFSR(8, seed=5)
        assert [a.step() for _ in range(50)] == [b.step() for _ in range(50)]

    def test_output_is_last_stage(self):
        # Stage `width` lives at the MSB and is the output.
        assert LFSR(4, seed=0b1010).step() == 1
        assert LFSR(4, seed=0b0010).step() == 0

    def test_state_stays_nonzero(self):
        lfsr = LFSR(5)
        for _ in range(100):
            lfsr.step()
            assert lfsr.state != 0


class TestUniform:
    def test_range(self):
        lfsr = LFSR(10)
        values = lfsr.sequence(200)
        assert values.min() > 0.0
        assert values.max() < 1.0

    def test_mean_near_half(self):
        values = LFSR(16).sequence(4000)
        assert abs(values.mean() - 0.5) < 0.05

    def test_negative_n(self):
        with pytest.raises(ValueError):
            LFSR(8).sequence(-1)


class TestValidation:
    def test_unknown_width(self):
        with pytest.raises(ValueError, match="taps"):
            LFSR(23)

    def test_zero_seed(self):
        with pytest.raises(ValueError, match="non-zero"):
            LFSR(8, seed=0)

    def test_bad_taps(self):
        with pytest.raises(ValueError):
            LFSR(4, taps=(5,))

    def test_all_tabulated_widths_construct(self):
        for width in MAXIMAL_TAPS:
            LFSR(width).step()


class TestUniformMatrix:
    def test_shape(self):
        matrix = lfsr_uniform_matrix(4, 32, width=8)
        assert matrix.shape == (4, 32)

    def test_rows_differ(self):
        matrix = lfsr_uniform_matrix(2, 64, width=12)
        assert not np.array_equal(matrix[0], matrix[1])

    def test_deterministic(self):
        a = lfsr_uniform_matrix(2, 16, width=8, seed=3)
        b = lfsr_uniform_matrix(2, 16, width=8, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_seed_wrap_stays_nonzero(self):
        # seed + row hitting a multiple of 2^width must not produce state 0.
        matrix = lfsr_uniform_matrix(3, 8, width=4, seed=15)
        assert matrix.shape == (3, 8)

    def test_negative_dims(self):
        with pytest.raises(ValueError):
            lfsr_uniform_matrix(-1, 4)
