"""Item memories: random codebook and level ladders."""

import numpy as np
import pytest

from repro.hdc import LevelItemMemory, RandomItemMemory
from repro.lds.discrepancy import hypervector_orthogonality


class TestRandomItemMemory:
    def test_shape(self):
        mem = RandomItemMemory(10, 256, np.random.default_rng(0))
        assert mem.matrix.shape == (10, 256)
        assert mem.matrix.dtype == np.int8

    def test_near_orthogonal(self):
        mem = RandomItemMemory(8, 4096, np.random.default_rng(1))
        assert hypervector_orthogonality(mem.matrix) < 0.05

    def test_vector_lookup(self):
        mem = RandomItemMemory(4, 32, np.random.default_rng(2))
        np.testing.assert_array_equal(mem.vector(2), mem.matrix[2])

    def test_encode_gathers(self):
        mem = RandomItemMemory(4, 32, np.random.default_rng(3))
        out = mem.encode(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 32)
        np.testing.assert_array_equal(out[1, 0], mem.vector(2))

    def test_out_of_range(self):
        mem = RandomItemMemory(4, 32, np.random.default_rng(4))
        with pytest.raises(ValueError):
            mem.vector(4)
        with pytest.raises(ValueError):
            mem.encode(np.array([-1]))

    def test_read_only(self):
        mem = RandomItemMemory(2, 8, np.random.default_rng(5))
        with pytest.raises(ValueError):
            mem.matrix[0, 0] = -1

    def test_bad_args(self):
        with pytest.raises(ValueError):
            RandomItemMemory(0, 8, np.random.default_rng(0))


class TestLevelFlipScheme:
    def test_similarity_decays_with_distance(self):
        mem = LevelItemMemory(16, 4096, np.random.default_rng(6), scheme="flip")
        base = mem.vector(0).astype(np.float64)
        sims = [float(base @ mem.vector(k).astype(np.float64)) / 4096 for k in range(16)]
        assert all(s1 >= s2 - 1e-9 for s1, s2 in zip(sims, sims[1:]))

    def test_extremes_near_orthogonal(self):
        mem = LevelItemMemory(16, 8192, np.random.default_rng(7), scheme="flip")
        sim = float(mem.vector(0).astype(np.int64) @ mem.vector(15).astype(np.int64)) / 8192
        assert abs(sim) < 0.05

    def test_adjacent_levels_highly_similar(self):
        mem = LevelItemMemory(16, 4096, np.random.default_rng(8), scheme="flip")
        sim = float(mem.vector(7).astype(np.int64) @ mem.vector(8).astype(np.int64)) / 4096
        assert sim > 0.9


class TestLevelThresholdScheme:
    def test_mean_monotonic_in_level(self):
        mem = LevelItemMemory(16, 4096, np.random.default_rng(9),
                              scheme="threshold")
        means = [float(mem.vector(k).mean()) for k in range(16)]
        assert all(m1 <= m2 + 1e-9 for m1, m2 in zip(means, means[1:]))

    def test_extreme_levels(self):
        mem = LevelItemMemory(16, 1024, np.random.default_rng(10),
                              scheme="threshold")
        assert (mem.vector(15) == 1).all()    # value 1.0 >= every threshold

    def test_proportional_ones(self):
        mem = LevelItemMemory(16, 8192, np.random.default_rng(11),
                              scheme="threshold")
        ones = float((mem.vector(8) == 1).mean())
        assert abs(ones - 8 / 15) < 0.03


class TestCommon:
    def test_encode_shape(self):
        mem = LevelItemMemory(8, 64, np.random.default_rng(12))
        out = mem.encode(np.array([0, 3, 7]))
        assert out.shape == (3, 64)

    def test_bad_scheme(self):
        with pytest.raises(ValueError):
            LevelItemMemory(8, 64, np.random.default_rng(0), scheme="spline")

    def test_bad_levels(self):
        with pytest.raises(ValueError):
            LevelItemMemory(1, 64, np.random.default_rng(0))

    def test_level_out_of_range(self):
        mem = LevelItemMemory(8, 64, np.random.default_rng(13))
        with pytest.raises(ValueError):
            mem.vector(8)
        with pytest.raises(ValueError):
            mem.encode(np.array([9]))

    def test_read_only(self):
        mem = LevelItemMemory(8, 64, np.random.default_rng(14))
        with pytest.raises(ValueError):
            mem.matrix[0, 0] = -1
