#!/usr/bin/env python3
"""Quickstart: train uHD and the baseline HDC on digit images.

Demonstrates the two headline properties of the paper:

1. uHD trains in a **single deterministic pass** (same seed = same model,
   no iteration sweep).
2. The baseline's accuracy **fluctuates across random hypervector draws**,
   which is why it needs iterative re-generation.

Run:  python examples/quickstart.py
"""

from repro import (
    BaselineConfig,
    BaselineHDC,
    UHDClassifier,
    UHDConfig,
    load_dataset,
)
from repro.utils import Stopwatch

DIM = 1024


def main() -> None:
    data = load_dataset("mnist", n_train=800, n_test=400).grayscale()
    print(f"dataset: {data.name}, {data.train_images.shape[0]} train / "
          f"{data.test_images.shape[0]} test, {data.num_pixels} pixels")

    with Stopwatch() as sw:
        uhd = UHDClassifier(data.num_pixels, data.num_classes, UHDConfig(dim=DIM))
        uhd.fit(data.train_images, data.train_labels)
        uhd_acc = uhd.score(data.test_images, data.test_labels)
    print(f"\nuHD (D={DIM}, single pass): {uhd_acc:.1%} in {sw.elapsed:.1f}s")

    print("\nbaseline HDC across three random hypervector draws:")
    baseline = BaselineHDC(data.num_pixels, data.num_classes,
                           BaselineConfig(dim=DIM))
    for iteration in range(3):
        baseline.reseed(iteration)
        baseline.fit(data.train_images, data.train_labels)
        acc = baseline.score(data.test_images, data.test_labels)
        print(f"  draw i={iteration + 1}: {acc:.1%}")

    # Determinism check: a fresh uHD model reproduces bit-identical results.
    again = UHDClassifier(data.num_pixels, data.num_classes, UHDConfig(dim=DIM))
    again.fit(data.train_images, data.train_labels)
    assert again.score(data.test_images, data.test_labels) == uhd_acc
    print("\nuHD re-run reproduced the identical accuracy (deterministic).")


if __name__ == "__main__":
    main()
