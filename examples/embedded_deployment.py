#!/usr/bin/env python3
"""Table I what-if explorer: the ARM-class deployment cost model.

Sweeps hypervector dimension and shows per-image runtime, dynamic memory,
and code footprint for both encoders on the modelled ARM1176-class core —
the trade-off a practitioner sizing an edge deployment would study.

Run:  python examples/embedded_deployment.py
"""

from repro.embedded import (
    ArmCoreModel,
    BASELINE_CODE_BYTES,
    UHD_CODE_BYTES,
    baseline_image_ops,
    baseline_memory,
    uhd_image_ops,
    uhd_memory,
)
from repro.eval.tables import render_table

H = 784  # 28 x 28 input


def main() -> None:
    core = ArmCoreModel()
    rows = []
    for dim in (512, 1024, 2048, 4096, 8192):
        base_ops = baseline_image_ops(H, dim)
        uhd_ops = uhd_image_ops(H, dim)
        base_rt = core.runtime_seconds(base_ops)
        uhd_rt = core.runtime_seconds(uhd_ops)
        rows.append((
            dim,
            f"{base_rt * 1e3:.1f}",
            f"{uhd_rt * 1e3:.2f}",
            f"{base_rt / uhd_rt:.1f}x",
            f"{baseline_memory(H, dim).total_kb:.0f}",
            f"{uhd_memory(H, dim).total_kb:.0f}",
        ))
    print(render_table(
        ["D", "baseline ms/img", "uHD ms/img", "speedup",
         "baseline KB", "uHD KB"],
        rows,
        title="Embedded deployment cost (ARM1176-class model, 700 MHz)",
    ))
    print(f"\ncode size: baseline {sum(BASELINE_CODE_BYTES.values()) / 1024:.1f} KB, "
          f"uHD {sum(UHD_CODE_BYTES.values()) / 1024:.1f} KB")
    print("\nper-image energy (core model):")
    for dim in (1024, 8192):
        base_e = core.energy_joules(baseline_image_ops(H, dim))
        uhd_e = core.energy_joules(uhd_image_ops(H, dim))
        print(f"  D={dim}: baseline {base_e * 1e3:.2f} mJ vs uHD "
              f"{uhd_e * 1e3:.3f} mJ -> {base_e / uhd_e:.1f}x")


if __name__ == "__main__":
    main()
