#!/usr/bin/env python3
"""Online (streaming) uHD training — edge-device learning without epochs.

uHD's class hypervectors are plain accumulators, so the model can learn
from a data stream one batch at a time with O(batch) work and no stored
dataset — the "dynamic" training story of the paper's title.  This script
runs the standard prequential (test-then-train) protocol and shows
accuracy climbing as the stream flows.

Run:  python examples/streaming_training.py
"""

import numpy as np

from repro import UHDConfig, load_dataset
from repro.core import StreamingUHD
from repro.eval.figures import ascii_chart

BATCH = 40


def main() -> None:
    data = load_dataset("mnist", n_train=1200, n_test=300)
    model = StreamingUHD(data.num_pixels, data.num_classes, UHDConfig(dim=1024))

    accuracies = model.evaluate_prequential(
        data.train_images, data.train_labels, batch_size=BATCH
    )
    print(f"prequential accuracy over {len(accuracies)} stream batches "
          f"(batch={BATCH}):")
    print(" ", ascii_chart(accuracies, label="test-then-train"))
    head = float(np.mean(accuracies[:3]))
    tail = float(np.mean(accuracies[-3:]))
    print(f"  first 3 batches: {head:.1%}   last 3 batches: {tail:.1%}")

    holdout = model.score(data.test_images, data.test_labels)
    print(f"\nhold-out accuracy after the stream: {holdout:.1%} "
          f"({model.samples_seen} samples seen, single pass, no epochs)")


if __name__ == "__main__":
    main()
