#!/usr/bin/env python3
"""The unary-domain datapath, end to end and bit-exact (paper Fig. 3-5).

Walks one image through the hardware-faithful pipeline:

  M-bit quantized intensities / Sobol codes  (Fig. 3(a))
    -> UST stream fetch                      (Fig. 3(c))
    -> unary AND/OR/AND-tree comparison      (Fig. 4)
    -> popcount accumulate + masking binarize (Fig. 5)

and verifies the result is *identical* to the arithmetic encoder — the
functional-correctness claim behind the paper's hardware substitution.

Run:  python examples/unary_pipeline.py
"""

import numpy as np

from repro import UHDConfig, load_dataset
from repro.core import SobolLevelEncoder, UnaryDomainEncoder, masking_binarize
from repro.unary import UnaryBitstream, UnaryStreamTable, unary_ge

CONFIG = UHDConfig(dim=256, levels=16)


def main() -> None:
    data = load_dataset("mnist", n_train=10, n_test=10)
    image = data.test_images[0]

    # --- the unary primitives on one pixel -------------------------------
    table = UnaryStreamTable(levels=CONFIG.levels)
    data_stream = table.fetch(9)
    sobol_stream = table.fetch(5)
    print("pixel code 9  ->", data_stream.to01())
    print("sobol code 5  ->", sobol_stream.to01())
    print("AND (min)     ->", (data_stream & sobol_stream).to01())
    print("9 >= 5 via unary comparator:", unary_ge(data_stream, sobol_stream))
    print()

    # --- the whole image, unary vs arithmetic ----------------------------
    unary = UnaryDomainEncoder(data.num_pixels, CONFIG)
    arithmetic = SobolLevelEncoder(data.num_pixels, CONFIG)

    v_unary = unary.encode(image)
    v_arith = arithmetic.encode(image)
    assert np.array_equal(v_unary, v_arith), "unary and arithmetic paths differ!"
    print(f"unary == arithmetic on all {CONFIG.dim} dimensions: True")

    signs = masking_binarize(v_unary, data.num_pixels)
    ones = int((signs > 0).sum())
    print(f"masking-logic binarization: {ones}/{CONFIG.dim} sign bits set")
    print("first 32 accumulator values:", v_unary[:32])


if __name__ == "__main__":
    main()
