#!/usr/bin/env python3
"""Synthesis-style characterisation of every uHD datapath block.

Builds the gate-level netlists of the paper's Fig. 3-5 circuits, runs
representative stimulus through the cycle simulator, and prints Design
Compiler-flavoured reports: cell counts, area, critical path, and
activity-based dynamic energy — the machinery behind checkpoints ➊➋➌.

Run:  python examples/hardware_characterization.py
"""

from pathlib import Path

from repro.hardware import Simulator, VcdRecorder, characterize, to_verilog
from repro.hardware.circuits import (
    UstFetchModel,
    bit_stream_stimulus,
    build_binary_comparator,
    build_comparator_binarizer,
    build_counter_comparator_generator,
    build_lfsr_hv_generator,
    build_masking_binarizer,
    build_unary_comparator,
    binary_comparator_stimulus,
    lfsr_generator_stimulus,
    random_value_pairs,
    unary_comparator_stimulus,
)

H = 784  # MNIST feature count
N = 16   # unary stream length (xi = 16)


def main() -> None:
    pairs = random_value_pairs(N, 200, seed=7)

    print(characterize(
        build_unary_comparator(N),
        unary_comparator_stimulus(N, pairs),
    ).render())
    print()

    small_pairs = [(a % N, b % N) for a, b in pairs]
    print(characterize(
        build_binary_comparator(10),
        binary_comparator_stimulus(10, small_pairs),
    ).render())
    print()

    gen = build_counter_comparator_generator(4)
    stim = [{f"v{i}": (9 >> i) & 1 for i in range(4)} for _ in range(16)]
    print(characterize(gen, stim).render())
    ust = UstFetchModel(N)
    print(f"\nUST fetch model: {ust.memory_bits} ROM bits, "
          f"{ust.average_fetch_energy_fj():.2f} fJ per 16-bit fetch\n")

    stream = bit_stream_stimulus(H, ones_fraction=0.5, seed=1)
    print(characterize(build_masking_binarizer(H), stream).render())
    print()
    print(characterize(build_comparator_binarizer(H), stream).render())
    print()

    print(characterize(
        build_lfsr_hv_generator(width=16, compare_bits=10),
        lfsr_generator_stimulus(10, 512, 200),
    ).render())

    # Export the unary comparator as structural Verilog and dump a VCD
    # trace of the masking binarizer for waveform inspection.
    verilog_path = Path("benchmarks/results/unary_comparator_n16.v")
    verilog_path.parent.mkdir(parents=True, exist_ok=True)
    verilog_path.write_text(to_verilog(build_unary_comparator(N)))
    print(f"\nwrote {verilog_path}")

    recorder = VcdRecorder(Simulator(build_masking_binarizer(32)))
    recorder.run(bit_stream_stimulus(32, ones_fraction=0.6, seed=2))
    vcd_path = recorder.write("benchmarks/results/masking_binarizer.vcd")
    print(f"wrote {vcd_path} ({recorder.cycles_recorded} cycles)")


if __name__ == "__main__":
    main()
