#!/usr/bin/env python3
"""Table V in miniature: uHD vs baseline across all six image datasets.

Exercises the full dataset registry (procedural MNIST, FashionMNIST,
CIFAR-10, BloodMNIST, BreastMNIST and SVHN stand-ins), the RGB-to-luma
path, and both classifiers at one dimension.

Run:  python examples/multi_dataset_classification.py
"""

from repro import BaselineConfig, BaselineHDC, UHDClassifier, UHDConfig, load_dataset
from repro.datasets import DATASET_NAMES
from repro.eval.tables import render_table

DIM = 1024
N_TRAIN, N_TEST = 600, 300


def main() -> None:
    rows = []
    for name in DATASET_NAMES:
        data = load_dataset(name, n_train=N_TRAIN, n_test=N_TEST).grayscale()

        uhd = UHDClassifier(data.num_pixels, data.num_classes, UHDConfig(dim=DIM))
        uhd.fit(data.train_images, data.train_labels)
        uhd_acc = uhd.score(data.test_images, data.test_labels)

        baseline = BaselineHDC(data.num_pixels, data.num_classes,
                               BaselineConfig(dim=DIM, seed=1))
        baseline.fit(data.train_images, data.train_labels)
        base_acc = baseline.score(data.test_images, data.test_labels)

        rows.append((name, data.num_classes, f"{uhd_acc:.1%}", f"{base_acc:.1%}"))
        print(f"done: {name}")

    print()
    print(render_table(
        ["dataset", "classes", f"uHD (D={DIM})", f"baseline (D={DIM})"],
        rows,
        title="uHD vs baseline HDC across datasets",
    ))


if __name__ == "__main__":
    main()
