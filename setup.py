"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517 --no-build-isolation`` uses this legacy
path; all project metadata lives in ``pyproject.toml``.

Dependency note: the packed fast path (``repro.fastpath``) uses
``numpy.bitwise_count``, available from **NumPy >= 2.0**.  Older NumPy
still works — ``repro.fastpath.bitops`` detects the missing ufunc and
falls back to a per-byte lookup table (slower popcounts, identical
results), so no hard version pin is required.
"""

from setuptools import setup

setup()
