"""Table IV — MNIST accuracy: baseline iteration sweep vs single-pass uHD.

Default scale: reduced sample counts and iteration checkpoints that fit a
single core (set REPRO_FULL=1 for the paper-leaning sweep).  Dimensions
default to 1K/2K; 8K joins under REPRO_FULL.

Reproduced shape: both models far above chance, accuracy non-decreasing
with D, baseline fluctuating across draws while uHD is deterministic.
The paper's additional claim that uHD edges out the baseline by ~1 point
did NOT transfer to the procedural dataset (see EXPERIMENTS.md).
"""

import os

from conftest import publish

from repro.eval import experiments as ex
from repro.eval.tables import render_table

_DIMS = (1024, 2048, 8192) if os.environ.get("REPRO_FULL") == "1" else (1024, 2048)


def _rows():
    return ex.table4_mnist_accuracy(dims=_DIMS)


def test_table4_mnist_accuracy(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    checkpoints = sorted(rows[0].baseline_by_checkpoint)
    headers = (["D"] + [f"baseline i<={c}" for c in checkpoints]
               + ["uHD (i=1)", "paper baseline i=1", "paper uHD"])
    body = [
        [r.dim] + [r.baseline_by_checkpoint[c] for c in checkpoints]
        + [r.uhd, r.paper_baseline_i1, r.paper_uhd]
        for r in rows
    ]
    text = render_table(headers, body,
                        title="Table IV - MNIST accuracy (%), reduced scale")
    for row in rows:
        assert row.uhd > 30.0               # far above 10-class chance
        assert row.baseline_by_checkpoint[1] > 30.0
    # Accuracy should not collapse as D grows.
    uhd_by_dim = [r.uhd for r in rows]
    assert uhd_by_dim[-1] >= uhd_by_dim[0] - 5.0
    publish("table4_mnist", text)
