"""Micro-benchmarks: software throughput of the reproduction's hot paths.

Not a paper table — these are the timings a downstream user of the library
cares about (encode rate, comparator batch rate, netlist simulation rate),
measured with pytest-benchmark's statistical machinery.
"""

import numpy as np
import pytest

from repro.core import SobolLevelEncoder, UHDConfig
from repro.hardware import Simulator
from repro.hardware.circuits import (
    build_unary_comparator,
    random_value_pairs,
    unary_comparator_stimulus,
)
from repro.hdc import BaselineConfig, BaselineHDC
from repro.unary import UnaryStreamTable, unary_ge_batch


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(32, 28, 28), dtype=np.uint8)


def test_uhd_encode_throughput(benchmark, images):
    encoder = SobolLevelEncoder(784, UHDConfig(dim=1024))
    result = benchmark(encoder.encode_batch, images)
    assert result.shape == (32, 1024)


def test_baseline_encode_throughput(benchmark, images):
    model = BaselineHDC(784, 10, BaselineConfig(dim=1024, seed=0))
    levels = np.random.default_rng(1).integers(0, 16, size=(32, 784))
    result = benchmark(model.encoder.encode_batch, levels)
    assert result.shape == (32, 1024)


def test_unary_comparator_batch_throughput(benchmark):
    table = UnaryStreamTable(16)
    rng = np.random.default_rng(2)
    first = table.fetch_batch(rng.integers(0, 16, size=4096))
    second = table.fetch_batch(rng.integers(0, 16, size=4096))
    result = benchmark(unary_ge_batch, first, second)
    assert result.shape == (4096,)


def test_netlist_simulation_rate(benchmark):
    netlist = build_unary_comparator(16)
    stimulus = unary_comparator_stimulus(16, random_value_pairs(16, 100, seed=0))

    def run():
        sim = Simulator(netlist)
        return sim.run(stimulus)

    outputs = benchmark(run)
    assert len(outputs) == 100


def test_sobol_generation_rate(benchmark):
    from repro.lds import sobol_sequences

    result = benchmark(sobol_sequences, 784, 1024, 7)
    assert result.shape == (784, 1024)
