"""Micro-benchmarks: software throughput of the reproduction's hot paths.

Not a paper table — these are the timings a downstream user of the library
cares about (encode rate, comparator batch rate, netlist simulation rate),
measured with pytest-benchmark's statistical machinery.
"""

import numpy as np
import pytest

from repro.core import SobolLevelEncoder, UHDConfig
from repro.api import get_backend
from repro.fastpath import PackedLevelEncoder, ThreadedLevelEncoder
from repro.hardware import Simulator
from repro.hardware.circuits import (
    build_unary_comparator,
    random_value_pairs,
    unary_comparator_stimulus,
)
from repro.hdc import BaselineConfig, BaselineHDC
from repro.hdc.classifier import CentroidClassifier
from repro.unary import UnaryStreamTable, unary_ge_batch


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(32, 28, 28), dtype=np.uint8)


@pytest.fixture(scope="module")
def encoded_queries():
    rng = np.random.default_rng(3)
    encoded = rng.integers(-784, 785, size=(512, 1024), dtype=np.int64)
    labels = rng.integers(0, 10, size=512)
    return encoded, labels


def _fitted_classifier(encoded, labels, backend):
    clf = CentroidClassifier(10, 1024, binarize=True, backend=get_backend(backend))
    return clf.fit(encoded, labels)


def test_uhd_encode_throughput(benchmark, images):
    encoder = SobolLevelEncoder(784, UHDConfig(dim=1024))
    result = benchmark(encoder.encode_batch, images)
    assert result.shape == (32, 1024)


def test_uhd_packed_encode_throughput(benchmark, images):
    """Packed fast path on the exact reference workload (>=10x target)."""
    reference = SobolLevelEncoder(784, UHDConfig(dim=1024))
    encoder = PackedLevelEncoder(784, UHDConfig(dim=1024))
    for _ in range(5):  # warm past pair-table promotion
        encoder.encode_batch(images)
    result = benchmark(encoder.encode_batch, images)
    np.testing.assert_array_equal(result, reference.encode_batch(images))


def test_uhd_threaded_encode_throughput(benchmark, images):
    """Threaded backend on a multi-chunk batch (fans out on >= 2 cores)."""
    large = np.concatenate([images] * 8, axis=0)
    packed = PackedLevelEncoder(784, UHDConfig(dim=1024))
    encoder = ThreadedLevelEncoder(784, UHDConfig(dim=1024))
    for _ in range(2):  # warm past pair-table promotion
        encoder.encode_batch(large)
        packed.encode_batch(large)
    result = benchmark(encoder.encode_batch, large)
    np.testing.assert_array_equal(result, packed.encode_batch(large))


def test_uhd_predict_binarized_throughput(benchmark, encoded_queries):
    clf = _fitted_classifier(*encoded_queries, backend="reference")
    result = benchmark(clf.predict, encoded_queries[0])
    assert result.shape == (512,)


def test_uhd_packed_predict_throughput(benchmark, encoded_queries):
    reference = _fitted_classifier(*encoded_queries, backend="reference")
    clf = _fitted_classifier(*encoded_queries, backend="packed")
    clf.predict(encoded_queries[0])  # warm the packed class-HV cache
    result = benchmark(clf.predict, encoded_queries[0])
    # exact equality is safe at D=1024 (a power of 4): reference cosines
    # are computed without rounding, so even tied rows break identically
    np.testing.assert_array_equal(result, reference.predict(encoded_queries[0]))


def test_baseline_encode_throughput(benchmark, images):
    model = BaselineHDC(784, 10, BaselineConfig(dim=1024, seed=0))
    levels = np.random.default_rng(1).integers(0, 16, size=(32, 784))
    result = benchmark(model.encoder.encode_batch, levels)
    assert result.shape == (32, 1024)


def test_unary_comparator_batch_throughput(benchmark):
    table = UnaryStreamTable(16)
    rng = np.random.default_rng(2)
    first = table.fetch_batch(rng.integers(0, 16, size=4096))
    second = table.fetch_batch(rng.integers(0, 16, size=4096))
    result = benchmark(unary_ge_batch, first, second)
    assert result.shape == (4096,)


def test_netlist_simulation_rate(benchmark):
    netlist = build_unary_comparator(16)
    stimulus = unary_comparator_stimulus(16, random_value_pairs(16, 100, seed=0))

    def run():
        sim = Simulator(netlist)
        return sim.run(stimulus)

    outputs = benchmark(run)
    assert len(outputs) == 100


def test_sobol_generation_rate(benchmark):
    # benchmark the engine directly: sobol_sequences now memoizes, so the
    # library call would only measure a cache hit after the first round
    from repro.lds import SobolEngine

    def generate():
        return SobolEngine(784, seed=7).random(1024).T

    result = benchmark(generate)
    assert result.shape == (784, 1024)
