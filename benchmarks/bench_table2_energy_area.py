"""Table II — energy and area-delay of hypervector generation.

Regenerates the per-hypervector / per-image energy and the area x delay
product for uHD vs the baseline at D = 1K / 2K / 8K from the gate-level
netlists and the 45 nm-class cell library.
"""

from conftest import publish

from repro.eval import experiments as ex
from repro.eval.tables import render_table


def _rows():
    return ex.table2_energy_area(dims=(1024, 2048, 8192))


def test_table2_energy_area(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["design", "D", "E/HV (pJ)", "E/image (pJ)", "area x delay (m^2 s)",
         "paper E/HV (pJ)", "paper AxD"],
        [(r.design, r.dim, r.energy_per_hv_pj, r.energy_per_image_pj,
          r.area_delay_m2s, r.paper_energy_per_hv_pj, r.paper_area_delay_m2s)
         for r in rows],
        title="Table II - energy and area-delay (gate-level model)",
    )
    by_key = {(r.design, r.dim): r for r in rows}
    for dim in (1024, 2048, 8192):
        ratio = (by_key[("baseline", dim)].energy_per_hv_pj
                 / by_key[("uhd", dim)].energy_per_hv_pj)
        paper_ratio = (by_key[("baseline", dim)].paper_energy_per_hv_pj
                       / by_key[("uhd", dim)].paper_energy_per_hv_pj)
        text += (f"\nD={dim}: uHD per-HV energy advantage {ratio:.1f}x "
                 f"(paper {paper_ratio:.0f}x)")
        assert ratio > 2.0
    publish("table2_energy_area", text)
