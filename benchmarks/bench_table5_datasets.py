"""Table V — uHD vs baseline accuracy on the five non-MNIST datasets.

Procedural stand-ins for CIFAR-10, BloodMNIST, BreastMNIST, FashionMNIST
and SVHN (see DESIGN.md substitutions), one dimension by default
(REPRO_FULL=1 adds the full D sweep).
"""

import os

from conftest import publish

from repro.eval import experiments as ex
from repro.eval.tables import render_table

_DIMS = (1024, 2048, 8192) if os.environ.get("REPRO_FULL") == "1" else (1024,)


def _rows():
    return ex.table5_datasets(dims=_DIMS)


def test_table5_datasets(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["dataset", "D", "uHD (%)", "baseline (%)", "paper uHD", "paper baseline"],
        [(r.dataset, r.dim, r.uhd, r.baseline, r.paper_uhd, r.paper_baseline)
         for r in rows],
        title="Table V - accuracy across datasets (procedural stand-ins)",
    )
    chance = {"cifar10": 10.0, "blood": 12.5, "breast": 50.0,
              "fashion": 10.0, "svhn": 10.0}
    for row in rows:
        assert row.uhd > chance[row.dataset] + 5.0, row.dataset
        assert row.baseline > chance[row.dataset] + 5.0, row.dataset
    publish("table5_datasets", text)
