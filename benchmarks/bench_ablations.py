"""Ablations of the design choices DESIGN.md calls out.

Not in the paper's tables, but each probes one of its design decisions:

* quantization depth xi (the paper claims xi = 16 costs no accuracy),
* LD family (is Sobol special vs Halton?),
* digital shift (does extra cross-dimension decorrelation help?),
* binding (what does dropping position hypervectors actually cost?).
"""

from conftest import publish

from repro.core import UHDClassifier, UHDConfig
from repro.eval.accuracy import RunScale, prepare_dataset
from repro.eval.tables import render_table
from repro.hdc import BaselineConfig, BaselineHDC

_SCALE = RunScale(n_train=600, n_test=300, max_iterations=1)
_DIM = 1024


def _dataset():
    return prepare_dataset("mnist", _SCALE, seed=0)


def _uhd_accuracy(data, **config_kwargs):
    model = UHDClassifier(data.num_pixels, data.num_classes,
                          UHDConfig(dim=_DIM, **config_kwargs))
    model.fit(data.train_images, data.train_labels)
    return model.score(data.test_images, data.test_labels) * 100.0


def test_ablation_quantization_depth(benchmark):
    data = _dataset()

    def sweep():
        rows = []
        for levels in (4, 8, 16, 32):
            rows.append((levels, _uhd_accuracy(data, levels=levels)))
        rows.append(("full", _uhd_accuracy(data, quantized=False)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(["xi (levels)", "uHD accuracy (%)"], rows,
                        title="Ablation - quantization depth at D=1024")
    by_levels = dict(rows)
    # Paper claim: xi=16 quantization does not affect accuracy.
    assert abs(by_levels[16] - by_levels["full"]) < 8.0
    publish("ablation_quantization", text)


def test_ablation_lds_family_and_shift(benchmark):
    data = _dataset()

    def sweep():
        return [
            ("sobol", _uhd_accuracy(data, lds="sobol")),
            ("sobol + digital shift", _uhd_accuracy(data, lds="sobol",
                                                    digital_shift=True)),
            ("halton", _uhd_accuracy(data, lds="halton")),
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(["LD family", "uHD accuracy (%)"], rows,
                        title="Ablation - low-discrepancy family at D=1024")
    accuracies = dict(rows)
    assert accuracies["sobol"] > 30.0
    assert accuracies["halton"] > 30.0
    publish("ablation_lds_family", text)


def test_ablation_binding(benchmark):
    """What position binding buys: baseline record encoding vs level-only."""
    data = _dataset()

    def sweep():
        uhd = _uhd_accuracy(data)
        base = BaselineHDC(data.num_pixels, data.num_classes,
                           BaselineConfig(dim=_DIM, seed=1))
        base.fit(data.train_images, data.train_labels)
        bound = base.score(data.test_images, data.test_labels) * 100.0
        return [("level-only (uHD, no binding)", uhd),
                ("position x level (baseline)", bound)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(["encoding", "accuracy (%)"], rows,
                        title="Ablation - binding vs position-free at D=1024")
    text += ("\nuHD trades a few accuracy points for the multiplier-free,"
             " position-memory-free datapath (Tables I-III).")
    for _, acc in rows:
        assert acc > 30.0
    publish("ablation_binding", text)
