#!/usr/bin/env python
"""Serving benchmark: micro-batched vs unbatched request throughput.

Stands up two :class:`repro.serve.UHDServer` pools over the same saved
model and pushes the same stream of small predict requests through both:

* ``serve_unbatched`` — ``max_batch`` pinned to the request size and a
  zero coalescing window, so every request pays its own dispatch and
  (in pool mode) IPC round-trip; this is what a naive per-request
  server does.
* ``serve_batched`` — the real micro-batcher: requests coalesce up to
  ``--max-batch`` rows inside a ``--max-wait-ms`` window, so the packed
  kernels see wide batches and the per-request fixed costs amortize.

It also times **worker warm-start** (start() to every worker ready)
per start method: ``worker_warmstart_fork`` (tables shared
copy-on-write) and ``worker_warmstart_spawn`` — the latter measured
both attaching the published tables (``table_store="shm"``) and
rebuilding them (``table_store="heap"``), plus the per-worker table
bytes a rebuild duplicates; the attach-vs-rebuild ratio is what the
shared gather-table arena buys on spawn platforms.

Three request-path rows measure the transport/scheduler layers:

* ``serve_http`` — the same request stream POSTed over the stdlib
  threaded HTTP transport (keep-alive connections, several client
  threads so handler threads feed the scheduler concurrently), against
  the in-process ``serve_batched`` number: the recorded
  ``overhead_vs_inproc`` is what the socket + JSON codec cost end to
  end.  A second pass with ``Accept: application/octet-stream`` (raw
  int64 label bytes instead of JSON) is recorded in the same row as
  ``octet_response_*`` — the response-codec share of that overhead.
* ``serve_binary`` — the same stream pipelined through one persistent
  :class:`repro.serve.BinaryClient` connection to the framed
  :class:`repro.serve.SocketTransport` (no JSON anywhere, pixels
  zero-copied from the receive buffer into batch assembly); its
  ``overhead_vs_inproc`` is asserted ``< 3.0`` before the row is
  written.
* ``serve_priority_mixed`` — an ``interactive`` lane (1 ms window,
  weight 4) probed with single-image requests while a ``bulk`` lane
  (50 ms window) is kept saturated by a background flood; the recorded
  interactive p50/p95 must stay bounded by the *interactive* lane's
  window (plus one in-flight batch), not the bulk lane's — the
  scheduler's anti-starvation contract, asserted before writing.

``serve_router_zoo`` exercises the fleet layer: a two-model router
(two replicas per model, least-loaded dispatch) under mixed traffic
from concurrent clients, with a **rolling hot reload of both models
mid-run** — the row is only written after asserting zero failed
requests and per-model bit-exact labels across the generation swap.

Labels are checked bit-exact against ``UHDClassifier.predict`` before
anything is timed.  Results merge into ``BENCH_throughput.json``
alongside the encode/predict rows ``run_bench.py`` records — the two
writers share the file without clobbering each other (see
``write_bench_json``), so the checked-in perf trajectory keeps its
existing recorded speedups.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --workers 2 --requests 128
    PYTHONPATH=src python benchmarks/bench_serving.py --no-write   # print only
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

from repro.core.config import UHDConfig
from repro.core.model import UHDClassifier
from repro.datasets import synthetic_mnist
from repro.eval.throughput import write_bench_json
from repro.serve import HttpTransport, LaneConfig, ServeConfig, UHDServer


def _train_model(path: str, dim: int, backend: str, seed: int) -> UHDClassifier:
    data = synthetic_mnist(n_train=500, n_test=100, seed=seed)
    model = UHDClassifier(
        data.num_pixels,
        data.num_classes,
        UHDConfig(dim=dim, backend=backend, binarize=True),
    )
    model.fit(data.train_images, data.train_labels)
    model.save(path)
    return model


def _time_round(server: UHDServer, queries: list[np.ndarray]) -> float:
    start = time.perf_counter()
    handles = [server.submit(batch) for batch in queries]
    for handle in handles:
        handle.result(timeout=60.0)
    return time.perf_counter() - start


def _serve_scenario(
    model_path: str,
    config: ServeConfig,
    queries: list[np.ndarray],
    expected: list[np.ndarray],
    repeats: int,
) -> tuple[float, float]:
    """(median wall seconds per round, mean batch size); verifies bit-exactness."""
    with UHDServer(model_path, config) as server:
        answers = [server.submit(batch) for batch in queries]
        for answer, want in zip(answers, expected):
            if not np.array_equal(answer.result(timeout=60.0), want):
                raise AssertionError(
                    "served labels are not bit-exact with UHDClassifier.predict"
                )
        _time_round(server, queries)  # warm
        times = [_time_round(server, queries) for _ in range(repeats)]
        stats = server.stats()
    return float(np.median(times)), stats.mean_batch_size


def _time_warmstart(
    model_path: str,
    num_pixels: int,
    workers: int,
    start_method: str,
    table_store: str,
    repeats: int,
) -> tuple[float, tuple[int, ...], int]:
    """(median start-to-fully-warm seconds, worker_table_builds, table bytes).

    "Fully warm" = every worker ready (spawn + model load + table
    attach-or-build + readiness probe) *and* a pair-promotion-sized
    request served.  Stopping at "ready" would flatter the rebuild
    path, which lazily builds only the small single table up front and
    pays the xi-times-larger pair build on the first real traffic;
    attach hands workers the promoted table immediately.
    """
    from repro.fastpath import PackedLevelEncoder
    from repro.serve import encoder_cache

    rng = np.random.default_rng(123)
    warm_batch = rng.integers(
        0, 256,
        size=(2 * PackedLevelEncoder.PAIR_PROMOTE_IMAGES, num_pixels),
        dtype=np.uint8,
    )
    times: list[float] = []
    builds: tuple[int, ...] = ()
    for _ in range(repeats):
        config = ServeConfig(
            workers=workers,
            start_method=start_method,
            table_store=table_store,
        )
        start = time.perf_counter()
        server = UHDServer(model_path, config).start()
        server.predict(warm_batch, timeout=120.0)
        times.append(time.perf_counter() - start)
        builds = server.stats().worker_table_builds
        server.close(drain_timeout=0.0)
    table_bytes = encoder_cache().stats().table_bytes
    return float(np.median(times)), builds, table_bytes


def _http_scenario(
    model_path: str,
    config: ServeConfig,
    queries: list[np.ndarray],
    expected: list[np.ndarray],
    repeats: int,
    client_threads: int = 8,
    octet_response: bool = False,
) -> tuple[float, float]:
    """(median wall seconds per round over HTTP, mean batch size).

    Each client thread holds one keep-alive connection and posts its
    share of the stream serially — concurrent handler threads then feed
    the scheduler together, which is the deployment shape.  Labels are
    verified bit-exact before timing.  ``octet_response=True`` sends
    ``Accept: application/octet-stream`` so the labels come back as raw
    int64 bytes instead of JSON — isolating the response-codec share of
    the HTTP overhead.
    """
    import http.client
    import json
    import threading

    with UHDServer(model_path, config) as server:
        with HttpTransport(server) as transport:
            host, port = "127.0.0.1", transport.port

            def post_range(indices: list[int], answers: dict) -> None:
                conn = http.client.HTTPConnection(host, port, timeout=60.0)
                headers = {"Content-Type": "application/json"}
                if octet_response:
                    headers["Accept"] = "application/octet-stream"
                try:
                    for index in indices:
                        body = json.dumps(
                            {"images": queries[index].tolist()}
                        ).encode("utf-8")
                        conn.request(
                            "POST", "/predict", body=body, headers=headers,
                        )
                        response = conn.getresponse()
                        raw = response.read()
                        if octet_response:
                            answers[index] = np.frombuffer(raw, dtype="<i8")
                        else:
                            answers[index] = np.asarray(
                                json.loads(raw)["labels"]
                            )
                finally:
                    conn.close()

            def one_round() -> dict:
                answers: dict[int, np.ndarray] = {}
                threads = [
                    threading.Thread(
                        target=post_range,
                        args=(list(range(t, len(queries), client_threads)),
                              answers),
                    )
                    for t in range(client_threads)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                return answers

            answers = one_round()  # warm + verify
            for index, want in enumerate(expected):
                if not np.array_equal(answers[index], want):
                    raise AssertionError(
                        "HTTP-served labels are not bit-exact with "
                        "UHDClassifier.predict"
                    )
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                one_round()
                times.append(time.perf_counter() - start)
            stats = server.stats()
    return float(np.median(times)), stats.mean_batch_size


def _binary_scenario(
    model_path: str,
    config: ServeConfig,
    queries: list[np.ndarray],
    expected: list[np.ndarray],
    repeats: int,
) -> tuple[float, float]:
    """(median wall seconds per round over the framed socket, mean batch size).

    One persistent :class:`BinaryClient` **pipelines** the stream: every
    predict frame goes out before the first response is collected, then
    responses are matched by echoed request id (they may complete out of
    order across worker batches).  That is the same submit-all-then-wait
    shape as the in-process scenario, so ``overhead_vs_inproc`` isolates
    pure wire + codec cost rather than serial round-trip stalls — and it
    is how a throughput-sensitive binary client should drive the server.
    Labels are verified bit-exact before timing.
    """
    from repro.serve import BinaryClient, SocketTransport

    with UHDServer(model_path, config) as server:
        with SocketTransport(server) as transport:
            with BinaryClient(
                transport.host, transport.port, timeout_s=60.0
            ) as client:
                def one_round() -> list[np.ndarray]:
                    ids = [client.send(batch) for batch in queries]
                    index_of = {rid: i for i, rid in enumerate(ids)}
                    answers: list = [None] * len(ids)
                    for _ in ids:
                        rid, labels = client.recv()
                        answers[index_of[rid]] = labels
                    return answers

                answers = one_round()  # warm + verify
                for answer, want in zip(answers, expected):
                    if not np.array_equal(answer, want):
                        raise AssertionError(
                            "binary-served labels are not bit-exact with "
                            "UHDClassifier.predict"
                        )
                times = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    one_round()
                    times.append(time.perf_counter() - start)
            stats = server.stats()
    return float(np.median(times)), stats.mean_batch_size


def _priority_mixed_scenario(
    model_path: str,
    workers: int,
    num_pixels: int,
    backend: str,
    seed: int,
    interactive_requests: int = 40,
) -> dict:
    """Interactive latency percentiles under a saturated bulk lane.

    A flood thread keeps several bulk requests outstanding at all times
    (the queue is never empty), while the main thread trickles
    single-image interactive requests and measures each submit→result
    round trip.  The scheduler's urgency rule must keep interactive p50
    bounded by the interactive window plus one in-flight bulk batch —
    nowhere near the bulk lane's window.
    """
    import threading
    from collections import deque

    interactive = LaneConfig(
        "interactive", max_batch=16, max_wait_ms=1.0, weight=4.0
    )
    bulk = LaneConfig("bulk", max_batch=64, max_wait_ms=50.0, weight=1.0)
    config = ServeConfig(
        workers=workers, lanes=(interactive, bulk), backend=backend
    )
    rng = np.random.default_rng(seed)
    bulk_images = rng.integers(0, 256, size=(64, num_pixels), dtype=np.uint8)
    single = rng.integers(
        0, 256, size=(interactive_requests, 1, num_pixels), dtype=np.uint8
    )
    stop = threading.Event()
    bulk_done = [0]

    with UHDServer(model_path, config) as server:
        def flood() -> None:
            pending: deque = deque()
            while not stop.is_set():
                while len(pending) < 6:
                    pending.append(server.submit(bulk_images, lane="bulk"))
                pending.popleft().result(timeout=60.0)
                bulk_done[0] += bulk_images.shape[0]
            while pending:
                pending.popleft().result(timeout=60.0)
                bulk_done[0] += bulk_images.shape[0]

        flood_start = time.perf_counter()
        flooder = threading.Thread(target=flood, daemon=True)
        flooder.start()
        time.sleep(0.2)  # let the bulk backlog build
        latencies = []
        for query in single:
            t0 = time.perf_counter()
            server.submit(query, lane="interactive").result(timeout=60.0)
            latencies.append(time.perf_counter() - t0)
            time.sleep(0.002)  # interactive traffic trickles, not floods
        stop.set()
        flooder.join(timeout=60.0)
        elapsed = time.perf_counter() - flood_start

    p50_ms = float(np.percentile(latencies, 50)) * 1e3
    p95_ms = float(np.percentile(latencies, 95)) * 1e3
    if p50_ms >= bulk.max_wait_ms:
        raise AssertionError(
            f"interactive p50 {p50_ms:.1f} ms is not bounded by its own "
            f"lane: it exceeds even the bulk window ({bulk.max_wait_ms} ms) "
            "- the anti-starvation contract is broken"
        )
    return {
        "name": "serve_priority_mixed",
        "median_s": p50_ms / 1e3,
        "ops_per_s": 1e3 / p50_ms,
        "speedup_vs_reference": None,
        "speedup_vs_packed": None,
        "workers": workers,
        "interactive_p50_ms": p50_ms,
        "interactive_p95_ms": p95_ms,
        "interactive_requests": interactive_requests,
        "interactive_max_wait_ms": interactive.max_wait_ms,
        "interactive_weight": interactive.weight,
        "bulk_max_wait_ms": bulk.max_wait_ms,
        "bulk_images_per_s": bulk_done[0] / elapsed if elapsed > 0 else 0.0,
        "p50_bounded_by_own_lane": True,  # asserted above
    }


def _router_zoo_scenario(
    dim: int,
    backend: str,
    seed: int,
    clients_per_model: int = 2,
    requests_per_client: int = 24,
    request_batch: int = 4,
) -> dict:
    """Two-model router under mixed traffic with a mid-run rolling reload.

    Each model gets two in-process replicas (workers=0 isolates the
    routing layer from pool IPC) and ``clients_per_model`` threads
    hammering it with fixed request streams.  Once a third of the
    traffic has been served, both deployments are hot-reloaded to a new
    generation *while the clients keep going*.  The row is only written
    after asserting: zero failed requests, every label bit-exact with
    its model's direct ``predict`` (before and after the swap), and both
    deployments on generation 2 at full replica strength.
    """
    import threading

    from repro.serve import DeploymentSpec, Router

    rng = np.random.default_rng(seed)
    model_ids = ("zoo-a", "zoo-b")
    paths: dict[str, str] = {}
    streams: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
    try:
        for offset, name in enumerate(model_ids):
            fd, path = tempfile.mkstemp(suffix=".npz", prefix=f"uhd-{name}-")
            os.close(fd)
            paths[name] = path
            model = _train_model(path, dim, backend, seed + 1 + offset)
            queries = [
                rng.integers(
                    0, 256, size=(request_batch, model.num_pixels),
                    dtype=np.uint8,
                )
                for _ in range(requests_per_client)
            ]
            streams[name] = [(q, model.predict(q)) for q in queries]

        specs = {
            name: DeploymentSpec(
                path,
                replicas=2,
                serve=ServeConfig(workers=0, backend=backend),
            )
            for name, path in paths.items()
        }
        failures: list[str] = []
        served = [0]
        counter_lock = threading.Lock()
        total = len(model_ids) * clients_per_model * requests_per_client

        with Router(specs) as router:
            def client(name: str) -> None:
                for query, want in streams[name]:
                    try:
                        labels = router.predict(name, query, timeout=60.0)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(
                            f"{name}: {type(exc).__name__}: {exc}"
                        )
                        return
                    if not np.array_equal(labels, want):
                        failures.append(f"{name}: labels diverged")
                        return
                    with counter_lock:
                        served[0] += 1

            threads = [
                threading.Thread(target=client, args=(name,))
                for name in model_ids
                for _ in range(clients_per_model)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            while served[0] < total // 3 and not failures:
                time.sleep(0.001)  # reload lands mid-traffic, not after
            reload_start = time.perf_counter()
            reports = [router.reload(name) for name in model_ids]
            reload_s = time.perf_counter() - reload_start
            for thread in threads:
                thread.join(timeout=120.0)
            elapsed = time.perf_counter() - start
            health = router.healthz()
    finally:
        for path in paths.values():
            os.unlink(path)

    if failures:
        raise AssertionError(
            f"router zoo traffic failed during rolling reload: {failures[:3]}"
        )
    if served[0] != total:
        raise AssertionError(
            f"dropped requests: served {served[0]} of {total}"
        )
    for report in reports:
        if report["to_generation"] != 2:
            raise AssertionError(f"reload did not advance generation: {report}")
    if not health["ok"] or health["degraded"]:
        raise AssertionError(f"fleet unhealthy after reload: {health}")
    images = total * request_batch
    return {
        "name": "serve_router_zoo",
        "median_s": elapsed,
        "ops_per_s": images / elapsed,
        "speedup_vs_reference": None,
        "speedup_vs_packed": None,
        "models": len(model_ids),
        "replicas_per_model": 2,
        "client_threads": len(model_ids) * clients_per_model,
        "requests": total,
        "images": images,
        "failed_requests": 0,  # asserted above
        "reloads": len(reports),
        "reload_s": reload_s,
        "zero_failed_during_reload": True,  # asserted above
        "bit_exact_across_generations": True,  # asserted above
    }


def _warmstart_rows(
    model_path: str, num_pixels: int, workers: int, repeats: int
) -> list[dict]:
    """``worker_warmstart_fork`` / ``worker_warmstart_spawn`` rows.

    Fork attaches the front-end's tables copy-on-write; spawn is
    measured both ways — attach (``table_store="shm"``) vs rebuild
    (``table_store="heap"``, the handle cannot cross a spawn boundary) —
    so the record shows exactly what the shared table arena buys on
    spawn platforms.  ``table_bytes_per_worker`` is what each *rebuild*
    duplicates and each attach shares.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    rows: list[dict] = []
    base = {
        "speedup_vs_reference": None,
        "speedup_vs_packed": None,
        "workers": workers,
    }
    if "fork" in methods:
        fork_s, fork_builds, table_bytes = _time_warmstart(
            model_path, num_pixels, workers, "fork", "heap", repeats
        )
        rows.append(
            {
                "name": "worker_warmstart_fork",
                "median_s": fork_s,
                "ops_per_s": workers / fork_s,
                **base,
                "table_store": "heap",
                "worker_table_builds": list(fork_builds),
                "table_bytes_per_worker": table_bytes,
            }
        )
    if "spawn" in methods:
        attach_s, attach_builds, table_bytes = _time_warmstart(
            model_path, num_pixels, workers, "spawn", "shm", repeats
        )
        rebuild_s, rebuild_builds, _ = _time_warmstart(
            model_path, num_pixels, workers, "spawn", "heap", repeats
        )
        rows.append(
            {
                "name": "worker_warmstart_spawn",
                "median_s": attach_s,
                "ops_per_s": workers / attach_s,
                **base,
                "table_store": "shm",
                "worker_table_builds": list(attach_builds),
                "table_bytes_per_worker": table_bytes,
                "rebuild_median_s": rebuild_s,
                "rebuild_worker_table_builds": list(rebuild_builds),
                "speedup_attach_vs_rebuild": rebuild_s / attach_s,
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--model", default=None,
        help="saved model (.npz); a small one is trained when omitted",
    )
    parser.add_argument("--dim", type=int, default=1024,
                        help="hypervector dimension for the trained model")
    parser.add_argument("--backend", default="packed",
                        help="registry backend for model and workers")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per server (0 = in-process fallback)",
    )
    parser.add_argument(
        "--requests", type=int, default=96,
        help="predict requests per timed round",
    )
    parser.add_argument(
        "--request-batch", type=int, default=1,
        help="images per request (1 = the pure micro-batching case)",
    )
    parser.add_argument("--max-batch", type=int, default=64,
                        help="coalescing bound for the batched scenario")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="coalescing window for the batched scenario")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed rounds (median reported)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default="BENCH_throughput.json",
        help="perf record to merge serve rows into (default: %(default)s)",
    )
    parser.add_argument(
        "--no-write", dest="write", action="store_false",
        help="print results without touching the perf record",
    )
    args = parser.parse_args(argv)

    tmp = None
    model_path = args.model
    if model_path is None:
        fd, model_path = tempfile.mkstemp(suffix=".npz", prefix="uhd-serving-")
        os.close(fd)
        tmp = model_path
        model = _train_model(model_path, args.dim, args.backend, args.seed)
    else:
        model = UHDClassifier.load(model_path)
    try:
        rng = np.random.default_rng(args.seed)
        queries = [
            rng.integers(
                0, 256, size=(args.request_batch, model.num_pixels),
                dtype=np.uint8,
            )
            for _ in range(args.requests)
        ]
        expected = [model.predict(batch) for batch in queries]

        unbatched = ServeConfig(
            workers=args.workers,
            max_batch=args.request_batch,
            max_wait_ms=0.0,
            backend=args.backend,
        )
        batched = ServeConfig(
            workers=args.workers,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            backend=args.backend,
        )
        unbatched_s, unbatched_mean = _serve_scenario(
            model_path, unbatched, queries, expected, args.repeats
        )
        batched_s, batched_mean = _serve_scenario(
            model_path, batched, queries, expected, args.repeats
        )
        http_s, http_mean = _http_scenario(
            model_path, batched, queries, expected, args.repeats
        )
        http_octet_s, _ = _http_scenario(
            model_path, batched, queries, expected, args.repeats,
            octet_response=True,
        )
        binary_s, binary_mean = _binary_scenario(
            model_path, batched, queries, expected, args.repeats
        )
        priority_row = _priority_mixed_scenario(
            model_path, max(1, args.workers), model.num_pixels,
            args.backend, args.seed,
        )
        warmstart_rows = _warmstart_rows(
            model_path, model.num_pixels, max(1, args.workers),
            max(2, args.repeats // 2),
        )
        router_row = _router_zoo_scenario(args.dim, args.backend, args.seed)
    finally:
        if tmp is not None:
            os.unlink(tmp)

    images = args.requests * args.request_batch
    rows = [
        {
            "name": "serve_unbatched",
            "median_s": unbatched_s,
            "ops_per_s": images / unbatched_s,
            "speedup_vs_reference": None,
            "speedup_vs_packed": None,
            "requests": args.requests,
            "images_per_request": args.request_batch,
            # amortized: round wall time / request count with all requests
            # submitted up front — inverse throughput, NOT queueing latency
            # (micro-batching adds up to max_wait_ms of latency per request)
            "ms_per_request_amortized": unbatched_s / args.requests * 1e3,
            "mean_batch_size": unbatched_mean,
        },
        {
            "name": "serve_batched",
            "median_s": batched_s,
            "ops_per_s": images / batched_s,
            "speedup_vs_reference": None,
            "speedup_vs_packed": None,
            "requests": args.requests,
            "images_per_request": args.request_batch,
            "ms_per_request_amortized": batched_s / args.requests * 1e3,
            "mean_batch_size": batched_mean,
            "speedup_vs_unbatched": unbatched_s / batched_s,
        },
        {
            "name": "serve_http",
            "median_s": http_s,
            "ops_per_s": images / http_s,
            "speedup_vs_reference": None,
            "speedup_vs_packed": None,
            "requests": args.requests,
            "images_per_request": args.request_batch,
            "ms_per_request_amortized": http_s / args.requests * 1e3,
            "mean_batch_size": http_mean,
            # > 1.0: what the loopback socket + JSON codec cost per round
            # relative to in-process submit on the identical stream
            "overhead_vs_inproc": http_s / batched_s,
            # same stream with Accept: application/octet-stream — labels
            # come back as raw int64 bytes, skipping the JSON response
            # codec (the request side still pays JSON)
            "octet_response_median_s": http_octet_s,
            "octet_response_overhead_vs_inproc": http_octet_s / batched_s,
            "octet_response_speedup": http_s / http_octet_s,
        },
        {
            "name": "serve_binary",
            "median_s": binary_s,
            "ops_per_s": images / binary_s,
            "speedup_vs_reference": None,
            "speedup_vs_packed": None,
            "requests": args.requests,
            "images_per_request": args.request_batch,
            "ms_per_request_amortized": binary_s / args.requests * 1e3,
            "mean_batch_size": binary_mean,
            # the tentpole number: framed socket + zero-copy assembly vs
            # in-process submit on the identical pipelined stream
            "overhead_vs_inproc": binary_s / batched_s,
            "speedup_vs_http": http_s / binary_s,
        },
    ]
    binary_overhead = binary_s / batched_s
    if binary_overhead >= 3.0:
        raise AssertionError(
            f"binary transport overhead {binary_overhead:.2f}x vs in-process "
            "submit breaches the < 3.0x budget - not writing the row"
        )
    rows.append(priority_row)
    rows.extend(warmstart_rows)
    rows.append(router_row)
    print("serving throughput (median round over repeats, bit-exact verified):")
    for row in rows:
        if row["name"] == "serve_priority_mixed":
            print(
                f"  {row['name']:<22} interactive p50 "
                f"{row['interactive_p50_ms']:6.2f} ms  p95 "
                f"{row['interactive_p95_ms']:6.2f} ms  (own window "
                f"{row['interactive_max_wait_ms']:g} ms, bulk window "
                f"{row['bulk_max_wait_ms']:g} ms)  bulk "
                f"{row['bulk_images_per_s']:.0f} images/s"
            )
            continue
        if row["name"] == "serve_router_zoo":
            print(
                f"  {row['name']:<22} {row['requests']} requests over "
                f"{row['models']} models x {row['replicas_per_model']} "
                f"replicas  {row['ops_per_s']:8.0f} images/s  reload "
                f"{row['reload_s'] * 1e3:.0f} ms mid-run, 0 failed, "
                "bit-exact across generations"
            )
            continue
        if row["name"].startswith("worker_warmstart"):
            extra = ""
            if "speedup_attach_vs_rebuild" in row:
                extra = (
                    f"  (attach {row['speedup_attach_vs_rebuild']:.1f}x vs "
                    f"rebuild {row['rebuild_median_s'] * 1e3:.0f} ms)"
                )
            print(
                f"  {row['name']:<22} {row['median_s'] * 1e3:8.1f} ms to warm "
                f"builds/worker {row['worker_table_builds']}  "
                f"table {row['table_bytes_per_worker'] / 1e6:.1f} MB shared{extra}"
            )
            continue
        extra = ""
        if "speedup_vs_unbatched" in row:
            extra = f"  ({row['speedup_vs_unbatched']:.1f}x vs unbatched)"
        if "overhead_vs_inproc" in row:
            extra = f"  ({row['overhead_vs_inproc']:.2f}x vs inproc submit)"
        print(
            f"  {row['name']:<18} {row['median_s'] * 1e3:8.3f} ms/round "
            f"{row['ops_per_s']:10.0f} images/s  "
            f"mean batch {row['mean_batch_size']:5.1f}{extra}"
        )
    if args.write:
        write_bench_json(
            {
                "serve_config": {
                    "workers": args.workers,
                    "requests": args.requests,
                    "images_per_request": args.request_batch,
                    "max_batch": args.max_batch,
                    "max_wait_ms": args.max_wait_ms,
                    "backend": args.backend,
                    "dim": model.config.dim,  # the served model's true D
                    "repeats": args.repeats,
                    "cpu_count": os.cpu_count(),
                },
                "benchmarks": rows,
            },
            args.out,
        )
        print(f"merged serve rows into {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
