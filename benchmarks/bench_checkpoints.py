"""Design checkpoints ➊➋➌ — block-level energy of the uHD datapath.

➊ stream generation (UST fetch vs counter+comparator), ➋ hypervector-bit
generation (UST+unary comparator vs LFSR+binary comparator), ➌ accumulate
and binarize (masking logic vs comparator).  All from gate-level activity;
the reproduced shape is the uHD advantage at every checkpoint.
"""

from conftest import publish

from repro.eval import experiments as ex
from repro.eval.tables import render_table


def _rows():
    return [
        ex.checkpoint1_generation(),
        ex.checkpoint2_comparator(),
        ex.checkpoint3_binarize(),
    ]


def test_design_checkpoints(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["checkpoint", "uHD (fJ)", "baseline (fJ)", "measured ratio",
         "paper uHD (fJ)", "paper baseline (fJ)", "paper ratio"],
        [(r.name, r.uhd_fj, r.baseline_fj, r.measured_ratio,
          r.paper_uhd_fj, r.paper_baseline_fj, r.paper_ratio) for r in rows],
        title="Design checkpoints - energy per operation",
    )
    for row in rows:
        assert row.measured_ratio > 1.0, row.name
    assert rows[0].measured_ratio > 10.0  # ➊ is the dramatic one
    publish("checkpoints", text)
