#!/usr/bin/env python
"""Throughput benchmark runner: writes the machine-readable perf trajectory.

Executes the reference-vs-packed-vs-threaded encode and binarized-predict
benchmarks (the same hot paths ``bench_throughput.py`` measures under
pytest-benchmark, without needing the plugin) and writes
``BENCH_throughput.json``: name, median seconds, ops/s and speedup ratios
per benchmark.  Subsequent PRs regress against the checked-in file.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --out BENCH_throughput.json --repeats 25
    PYTHONPATH=src python benchmarks/run_bench.py --smoke

``--smoke`` is the CI guard: a quick run compared against the checked-in
baseline — every recorded speedup must hold to within ``--min-ratio``
(default 0.5, generous because CI machines differ from the recording
machine).  Smoke mode never overwrites the baseline; it exits non-zero on
regression.

``--threaded-gate`` is the separate multi-core check for the ROADMAP's
threaded rung: on hosts with >= 4 cores the threaded encoder must clear
1.5x over single-threaded packed on the large batch (run it at the
criterion workload, e.g. ``--dim 8192``); on fewer cores it reports
SKIPPED rather than guessing.  It needs no baseline file.

Also exposed as ``repro-uhd bench`` (without the guards).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.eval.throughput import render_results, run_throughput_suite, write_bench_json

#: threaded-vs-packed encode target on hosts with at least this many cores
THREADED_MIN_CORES = 4
THREADED_MIN_SPEEDUP = 1.5


#: workload keys that must match the baseline for speedup ratios to be
#: commensurate (machine keys like numpy/cpu_count legitimately differ)
_WORKLOAD_KEYS = ("pixels", "dim", "levels", "batch", "thread_batch", "queries")


def check_smoke(results: dict, baseline: dict, min_ratio: float) -> list[str]:
    """Recorded-speedup regression verdicts; empty list means pass."""
    failures: list[str] = []
    for key in _WORKLOAD_KEYS:
        new_value = results["config"].get(key)
        old_value = baseline.get("config", {}).get(key)
        if old_value is not None and new_value != old_value:
            failures.append(
                f"workload mismatch: {key}={new_value} but the baseline was "
                f"recorded at {key}={old_value}; speedup comparison would be "
                "meaningless (rerun with matching flags)"
            )
    if failures:
        return failures
    recorded = {b["name"]: b for b in baseline.get("benchmarks", [])}
    result_names = {b["name"] for b in results["benchmarks"]}
    compared = 0
    for bench in results["benchmarks"]:
        old = recorded.get(bench["name"])
        if old is None:
            continue  # benchmark added after the baseline was recorded
        for key in ("speedup_vs_reference", "speedup_vs_packed"):
            # thread-fan-out ratios only transfer between same-shaped hosts
            # (a 1-core recording of speedup_vs_packed measures serial noise)
            if key == "speedup_vs_packed" and (
                results["config"].get("cpu_count")
                != baseline.get("config", {}).get("cpu_count")
            ):
                continue
            old_speedup = old.get(key)
            new_speedup = bench.get(key)
            if not old_speedup or not new_speedup:
                continue
            compared += 1
            if new_speedup < min_ratio * old_speedup:
                failures.append(
                    f"{bench['name']}: {key} regressed to {new_speedup:.2f}x "
                    f"(recorded {old_speedup:.2f}x, floor "
                    f"{min_ratio * old_speedup:.2f}x)"
                )
    # a rename/removal must not turn the guard into a vacuous pass
    for name, old in recorded.items():
        has_speedup = old.get("speedup_vs_reference") or old.get("speedup_vs_packed")
        if has_speedup and name not in result_names:
            failures.append(
                f"baseline row {name!r} has no matching result — renamed or "
                "removed benchmark? regenerate the baseline"
            )
    if compared == 0:
        failures.append(
            "no speedup comparisons ran against the baseline — the smoke "
            "guard would pass vacuously; regenerate the baseline"
        )
    return failures


def check_threaded_gate(results: dict) -> tuple[list[str], str | None]:
    """(failures, skip_reason) for the >=1.5x-on->=4-cores threaded check."""
    cpu_count = results["config"].get("cpu_count") or 1
    if cpu_count < THREADED_MIN_CORES:
        return [], (
            f"host has {cpu_count} core(s) < {THREADED_MIN_CORES}; the "
            "threaded rung target only applies on multi-core hosts"
        )
    threaded = next(
        (b for b in results["benchmarks"] if b["name"] == "uhd_encode_threaded_large"),
        None,
    )
    if threaded is None:
        return ["uhd_encode_threaded_large missing from results"], None
    speedup = threaded.get("speedup_vs_packed") or 0.0
    if speedup < THREADED_MIN_SPEEDUP:
        return [
            f"uhd_encode_threaded_large: {speedup:.2f}x vs packed on "
            f"{cpu_count} cores (threaded rung requires >= "
            f"{THREADED_MIN_SPEEDUP}x on >= {THREADED_MIN_CORES} cores)"
        ], None
    return [], None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_throughput.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per benchmark, median reported "
             "(default: 25, or 5 under --smoke/--threaded-gate)",
    )
    parser.add_argument(
        "--dim", "--dims", type=int, default=1024, dest="dim",
        help="hypervector dimension (``--dims`` accepted to match the CLI)",
    )
    parser.add_argument("--pixels", type=int, default=784, help="pixels per image")
    parser.add_argument("--batch", type=int, default=32, help="encode batch size")
    parser.add_argument(
        "--thread-batch", type=int, default=256,
        help="large-batch size for the threaded-vs-packed encode comparison",
    )
    parser.add_argument(
        "--queries", type=int, default=512, help="inference query count"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick CI guard: compare against --baseline instead of writing",
    )
    parser.add_argument(
        "--threaded-gate", action="store_true",
        help="enforce the >=1.5x threaded-vs-packed encode target on >=4 "
             "cores (SKIPPED on smaller hosts); no baseline needed",
    )
    parser.add_argument(
        "--baseline", default="BENCH_throughput.json",
        help="recorded baseline for --smoke (default: %(default)s)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.5,
        help="--smoke floor: measured speedup must be >= this fraction of "
             "the recorded one (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    quick = args.smoke or args.threaded_gate
    repeats = args.repeats if args.repeats is not None else (5 if quick else 25)
    results = run_throughput_suite(
        pixels=args.pixels,
        dim=args.dim,
        batch=args.batch,
        thread_batch=args.thread_batch,
        queries=args.queries,
        repeats=repeats,
    )
    print(render_results(results))
    failures: list[str] = []
    if args.smoke:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"SMOKE REGRESSION: cannot read baseline {args.baseline}: {exc}",
                file=sys.stderr,
            )
            return 1
        smoke_failures = check_smoke(results, baseline, args.min_ratio)
        for failure in smoke_failures:
            print(f"SMOKE REGRESSION: {failure}", file=sys.stderr)
        if not smoke_failures:
            print(f"smoke check OK against {args.baseline}")
        failures.extend(smoke_failures)
    if args.threaded_gate:
        gate_failures, skip_reason = check_threaded_gate(results)
        for failure in gate_failures:
            print(f"THREADED GATE: {failure}", file=sys.stderr)
        if skip_reason:
            print(f"threaded gate SKIPPED: {skip_reason}")
        elif not gate_failures:
            print("threaded gate OK")
        failures.extend(gate_failures)
    if quick:
        return 1 if failures else 0
    write_bench_json(results, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
