#!/usr/bin/env python
"""Throughput benchmark runner: writes the machine-readable perf trajectory.

Executes the reference-vs-packed encode and binarized-predict benchmarks
(the same hot paths ``bench_throughput.py`` measures under
pytest-benchmark, without needing the plugin) and writes
``BENCH_throughput.json``: name, median seconds, ops/s and speedup vs the
reference backend per benchmark.  Subsequent PRs regress against the
checked-in file.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --out BENCH_throughput.json --repeats 25

Also exposed as ``repro-uhd bench``.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.throughput import render_results, run_throughput_suite, write_bench_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_throughput.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=25,
        help="timing repeats per benchmark, median reported (default: %(default)s)",
    )
    parser.add_argument(
        "--dim", "--dims", type=int, default=1024, dest="dim",
        help="hypervector dimension (``--dims`` accepted to match the CLI)",
    )
    parser.add_argument("--pixels", type=int, default=784, help="pixels per image")
    parser.add_argument("--batch", type=int, default=32, help="encode batch size")
    parser.add_argument(
        "--queries", type=int, default=512, help="inference query count"
    )
    args = parser.parse_args(argv)
    results = run_throughput_suite(
        pixels=args.pixels,
        dim=args.dim,
        batch=args.batch,
        queries=args.queries,
        repeats=args.repeats,
    )
    write_bench_json(results, args.out)
    print(render_results(results))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
