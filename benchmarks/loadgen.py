#!/usr/bin/env python
"""Open-loop load generator for a live uHD serving endpoint.

Closed-loop clients (send, wait, send again) measure a server at the
rate the *server* chooses — under saturation they self-throttle and the
latency numbers look flattering.  This harness is **open-loop**: every
request's send time is drawn from an arrival process *before the run
starts*, and sender threads fire at those times whether or not earlier
requests have completed.  Offered load is what you asked for; achieved
load and the latency distribution are what the server earned.

Arrival processes (``--process``):

* ``poisson`` — independent exponential gaps (the classic open-loop
  model of many uncoordinated clients).
* ``uniform`` — evenly spaced arrivals (a pessimal best case: zero
  burstiness).
* ``bursty`` — arrivals grouped into back-to-back bursts of
  ``--burst-size`` at burst epochs spaced to hold the target rate; the
  stress case for the coalescing window and lane weights.

``--ramp 5,20,80`` runs one stage per listed rate (each ``--duration``
seconds long) and emits per-stage rows — the quick way to find the knee
of the latency curve.  ``--lanes interactive:4,bulk:1`` mixes traffic
across named priority lanes with the given weights; each request's lane
is drawn deterministically from ``--seed``.

Results go to ``--csv`` as a **fixed-schema run table**: one row per
(stage x lane) plus a per-stage ``(all)`` row carrying the
whole-process numbers (CPU, RSS, joules/request).  Latency quantiles
come from the same fixed log-spaced buckets the server's own
``/metrics`` histograms use (:mod:`repro.serve.histogram`), so client-
and server-side p95s are directly comparable.  Energy per request is
the gate-level-simulated encode energy from :mod:`repro.eval.energy`
(``--dim``/``--pixels`` must match the served model; ``--no-energy``
blanks the column).  CPU/RSS are read from ``/proc/<pid>`` when
``--server-pid`` is given (Linux only).

``--transport http`` (default) speaks keep-alive ``http.client``;
``--transport binary`` drives the framed socket protocol through
:class:`repro.serve.BinaryClient` against a ``--binary-port`` endpoint
— same schedule, same outcome taxonomy, same CSV schema (the
``transport`` column tells the rows apart).  Beyond that client, the
harness is stdlib-only at runtime — the only other non-stdlib imports
are the repo's own histogram and energy modules.

Usage::

    PYTHONPATH=src python benchmarks/loadgen.py --url http://127.0.0.1:8080 \\
        --rps 50 --duration 10 --lanes interactive:4,bulk:1
    PYTHONPATH=src python benchmarks/loadgen.py --url ... --ramp 5,20,80
    PYTHONPATH=src python benchmarks/loadgen.py --url ... --smoke
    PYTHONPATH=src python benchmarks/loadgen.py --url uhd://127.0.0.1:9090 \\
        --transport binary --rps 200

``--smoke`` is the CI mode: a short fixed run that exits non-zero if
any request failed (expired deadlines are counted separately and are
not failures).
"""

from __future__ import annotations

import argparse
import csv
import http.client
import os
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import urlencode, urlsplit

if __package__ in (None, ""):  # direct script run: make repro importable
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.exists() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.serve.histogram import HistogramSnapshot, LatencyHistogram

#: CSV schema, pinned — tests and CI assert these exact columns
CSV_COLUMNS = (
    "run",
    "process",
    "transport",
    "lane",
    "offered_rps",
    "achieved_rps",
    "duration_s",
    "requests",
    "ok",
    "failed",
    "expired",
    "failure_rate",
    "expiry_rate",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "mean_ms",
    "cpu_pct",
    "rss_mb",
    "joules_per_request",
)

#: the label the run table uses for the whole-stage aggregate row
ALL_LANES = "(all)"
#: the label used when requests are sent without naming a lane
DEFAULT_LANE = "(default)"


# ------------------------------------------------------------ schedules


def build_schedule(
    process: str,
    rps: float,
    duration_s: float,
    lanes: list[tuple[str | None, int]],
    seed: int,
    burst_size: int = 8,
) -> list[tuple[float, str | None]]:
    """Precompute the full arrival schedule: ``[(t_offset_s, lane), ...]``.

    Deterministic in ``seed`` — two runs with the same arguments offer
    byte-identical load, which is what makes A/B comparisons honest.
    """
    if rps <= 0:
        raise ValueError(f"rps must be > 0, got {rps}")
    if duration_s <= 0:
        raise ValueError(f"duration must be > 0, got {duration_s}")
    rng = random.Random(seed)
    times: list[float] = []
    if process == "poisson":
        t = 0.0
        while True:
            t += rng.expovariate(rps)
            if t >= duration_s:
                break
            times.append(t)
    elif process == "uniform":
        gap = 1.0 / rps
        times = [i * gap for i in range(1, int(duration_s * rps) + 1)]
        times = [t for t in times if t < duration_s]
    elif process == "bursty":
        if burst_size < 1:
            raise ValueError(f"burst size must be >= 1, got {burst_size}")
        epoch_gap = burst_size / rps
        t = 0.0
        while t < duration_s:
            times.extend([t] * burst_size)
            t += epoch_gap
        times = [t for t in times if t < duration_s]
    else:
        raise ValueError(f"unknown arrival process {process!r}")
    names = [name for name, _ in lanes]
    weights = [weight for _, weight in lanes]
    assigned = rng.choices(names, weights=weights, k=len(times))
    return list(zip(times, assigned))


def parse_lanes(spec: str) -> list[tuple[str | None, int]]:
    """``"interactive:4,bulk:1"`` -> ``[("interactive", 4), ("bulk", 1)]``.

    An empty spec means a single unnamed lane (the server's default);
    a bare name gets weight 1.
    """
    if not spec.strip():
        return [(None, 1)]
    lanes: list[tuple[str | None, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, weight_text = part.rsplit(":", 1)
            try:
                weight = int(weight_text)
            except ValueError:
                raise ValueError(
                    f"lane weight must be an integer: {part!r}"
                ) from None
        else:
            name, weight = part, 1
        if weight < 1:
            raise ValueError(f"lane weight must be >= 1: {part!r}")
        lanes.append((name or None, weight))
    if not lanes:
        return [(None, 1)]
    return lanes


# ------------------------------------------------------------ resources


class ProcSampler:
    """CPU%% and RSS of a server process via ``/proc`` (Linux only).

    ``start()`` snapshots CPU time; ``finish()`` returns
    ``(cpu_pct, rss_mb)`` over the elapsed window, or ``(None, None)``
    when the pid is gone or the platform has no ``/proc``.
    """

    def __init__(self, pid: int | None) -> None:
        self.pid = pid
        self._t0: float | None = None
        self._cpu0: float | None = None

    def _cpu_seconds(self) -> float | None:
        if self.pid is None:
            return None
        try:
            with open(f"/proc/{self.pid}/stat", "rb") as fh:
                fields = fh.read().rsplit(b")", 1)[1].split()
        except OSError:
            return None
        # utime + stime are fields 14/15 (1-based); after the comm split
        # the first remaining field is state (#3), so indices 11 and 12
        ticks = int(fields[11]) + int(fields[12])
        return ticks / os.sysconf("SC_CLK_TCK")

    def rss_mb(self) -> float | None:
        if self.pid is None:
            return None
        try:
            with open(f"/proc/{self.pid}/status") as fh:
                for line in fh:
                    if line.startswith("VmRSS:"):
                        return int(line.split()[1]) / 1024.0
        except OSError:
            return None
        return None

    def start(self) -> None:
        self._t0 = time.monotonic()
        self._cpu0 = self._cpu_seconds()

    def finish(self) -> tuple[float | None, float | None]:
        rss = self.rss_mb()
        if self._t0 is None or self._cpu0 is None:
            return None, rss
        cpu1 = self._cpu_seconds()
        if cpu1 is None:
            return None, rss
        elapsed = time.monotonic() - self._t0
        if elapsed <= 0:
            return None, rss
        return 100.0 * (cpu1 - self._cpu0) / elapsed, rss


# ------------------------------------------------------------ the runner


@dataclass
class LaneTally:
    """Client-side per-lane outcome counters plus the latency recorder."""

    ok: int = 0
    failed: int = 0
    expired: int = 0
    hist: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def requests(self) -> int:
        return self.ok + self.failed + self.expired


class OpenLoopRunner:
    """Fires a precomputed schedule at a URL from a sender-thread pool.

    Open-loop: each sender claims the next arrival, sleeps until its
    scheduled time, and fires — it never waits for other requests.  If
    every sender is busy when an arrival comes due, the request goes out
    late (and ``achieved_rps`` < ``offered_rps`` records the shortfall)
    rather than being dropped: the offered schedule is the contract.
    """

    def __init__(
        self,
        url: str,
        schedule: list[tuple[float, str | None]],
        body: bytes,
        rows: int,
        concurrency: int,
        deadline_ms: float | None = None,
        timeout_s: float = 30.0,
        transport: str = "http",
    ) -> None:
        if transport not in ("http", "binary"):
            raise ValueError(f"unknown transport {transport!r}")
        split = urlsplit(url)
        allowed = ("http",) if transport == "http" else ("http", "uhd")
        if split.scheme not in allowed or not split.hostname:
            raise ValueError(
                f"need a {' or '.join(s + '://' for s in allowed)} URL, "
                f"got {url!r}"
            )
        self._transport = transport
        self._host = split.hostname
        self._port = split.port or 80
        self._path_prefix = split.path.rstrip("/")
        self._schedule = schedule
        self._body = body
        self._rows = rows
        self._images = None
        if transport == "binary":
            import numpy as np

            pixels = len(body) // rows if rows else 0
            self._images = np.frombuffer(body, dtype=np.uint8).reshape(
                rows, pixels
            )
        self._concurrency = max(1, min(concurrency, len(schedule) or 1))
        self._deadline_ms = deadline_ms
        self._timeout_s = timeout_s
        self._next = 0
        self._lock = threading.Lock()
        self.tallies: dict[str, LaneTally] = {}
        self.errors: list[str] = []  # first few failure reasons, for humans

    def _claim(self) -> tuple[float, str | None] | None:
        with self._lock:
            if self._next >= len(self._schedule):
                return None
            item = self._schedule[self._next]
            self._next += 1
            return item

    def _tally(self, lane: str | None) -> LaneTally:
        key = lane if lane is not None else DEFAULT_LANE
        with self._lock:
            tally = self.tallies.get(key)
            if tally is None:
                tally = self.tallies.setdefault(key, LaneTally())
            return tally

    def _predict_path(self, lane: str | None) -> str:
        params = {}
        if lane is not None:
            params["lane"] = lane
        if self._deadline_ms is not None:
            params["deadline_ms"] = f"{self._deadline_ms:g}"
        query = f"?{urlencode(params)}" if params else ""
        return f"{self._path_prefix}/predict{query}"

    def _send_one(self, conn: http.client.HTTPConnection, lane: str | None):
        """One request; returns (status_class, latency_s)."""
        headers = {
            "Content-Type": "application/octet-stream",
            "X-UHD-Rows": str(self._rows),
        }
        t0 = time.monotonic()
        conn.request("POST", self._predict_path(lane), self._body, headers)
        response = conn.getresponse()
        payload = response.read()  # always drain: keep-alive hygiene
        latency = time.monotonic() - t0
        if response.status == 200:
            return "ok", latency
        if response.status == 504:
            return "expired", latency
        with self._lock:
            if len(self.errors) < 5:
                self.errors.append(
                    f"HTTP {response.status}: {payload[:120]!r}"
                )
        return "failed", latency

    def _record(self, tally: LaneTally, outcome: str, latency: float) -> None:
        with self._lock:
            if outcome == "ok":
                tally.ok += 1
            elif outcome == "expired":
                tally.expired += 1
            else:
                tally.failed += 1
        if outcome == "ok":
            tally.hist.record(latency)
        elif outcome == "expired":
            tally.hist.exclude()

    def _note_error(self, text: str) -> None:
        with self._lock:
            if len(self.errors) < 5:
                self.errors.append(text)

    def _worker(self, start: float) -> None:
        if self._transport == "binary":
            self._worker_binary(start)
            return
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout_s
        )
        try:
            while True:
                claimed = self._claim()
                if claimed is None:
                    return
                offset, lane = claimed
                delay = (start + offset) - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                tally = self._tally(lane)
                try:
                    outcome, latency = self._send_one(conn, lane)
                except OSError as exc:
                    self._note_error(f"connection error: {exc}")
                    outcome, latency = "failed", 0.0
                    conn.close()  # force a clean reconnect next request
                self._record(tally, outcome, latency)
        finally:
            conn.close()

    def _send_one_binary(self, client, lane: str | None):
        """One framed round trip; returns (outcome, latency_s)."""
        from repro.serve import DeadlineExpiredError, ServeError

        t0 = time.monotonic()
        try:
            client.predict(
                self._images, lane=lane, deadline_ms=self._deadline_ms
            )
        except DeadlineExpiredError:
            return "expired", time.monotonic() - t0
        except (ValueError, ServeError) as exc:
            self._note_error(f"binary error: {exc}")
            return "failed", time.monotonic() - t0
        return "ok", time.monotonic() - t0

    def _worker_binary(self, start: float) -> None:
        from repro.serve import BinaryClient

        client = None
        try:
            while True:
                claimed = self._claim()
                if claimed is None:
                    return
                offset, lane = claimed
                delay = (start + offset) - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                tally = self._tally(lane)
                try:
                    if client is None:
                        client = BinaryClient(
                            self._host, self._port, timeout_s=self._timeout_s
                        )
                    outcome, latency = self._send_one_binary(client, lane)
                except OSError as exc:
                    self._note_error(f"connection error: {exc}")
                    outcome, latency = "failed", 0.0
                    if client is not None:  # reconnect on the next request
                        client.close()
                        client = None
                self._record(tally, outcome, latency)
        finally:
            if client is not None:
                client.close()

    def run(self) -> float:
        """Fire the whole schedule; returns the actual wall duration."""
        start = time.monotonic()
        threads = [
            threading.Thread(
                target=self._worker, args=(start,), name=f"loadgen-{i}"
            )
            for i in range(self._concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.monotonic() - start


# ------------------------------------------------------------ run table


def _fmt(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def stage_rows(
    run_name: str,
    process: str,
    transport: str,
    offered_rps: float,
    planned_duration_s: float,
    actual_duration_s: float,
    tallies: dict[str, LaneTally],
    cpu_pct: float | None,
    rss_mb: float | None,
    joules_per_request: float | None,
) -> list[dict]:
    """The fixed-schema rows for one stage: per lane, then ``(all)``."""
    rows: list[dict] = []
    snapshots = {name: tally.hist.snapshot() for name, tally in tallies.items()}

    def make_row(lane: str, requests, ok, failed, expired, snap, whole_stage):
        achieved = ok / actual_duration_s if actual_duration_s > 0 else 0.0
        return {
            "run": run_name,
            "process": process,
            "transport": transport,
            "lane": lane,
            "offered_rps": offered_rps,
            "achieved_rps": achieved,
            "duration_s": actual_duration_s,
            "requests": requests,
            "ok": ok,
            "failed": failed,
            "expired": expired,
            "failure_rate": failed / requests if requests else 0.0,
            "expiry_rate": expired / requests if requests else 0.0,
            "p50_ms": snap.p50_ms,
            "p95_ms": snap.p95_ms,
            "p99_ms": snap.p99_ms,
            "mean_ms": snap.mean_ms,
            "cpu_pct": cpu_pct if whole_stage else None,
            "rss_mb": rss_mb if whole_stage else None,
            "joules_per_request": joules_per_request if whole_stage else None,
        }

    for lane in sorted(tallies):
        tally = tallies[lane]
        rows.append(
            make_row(
                lane,
                tally.requests,
                tally.ok,
                tally.failed,
                tally.expired,
                snapshots[lane],
                whole_stage=False,
            )
        )
    merged = HistogramSnapshot.merge(snapshots.values())
    rows.append(
        make_row(
            ALL_LANES,
            sum(t.requests for t in tallies.values()),
            sum(t.ok for t in tallies.values()),
            sum(t.failed for t in tallies.values()),
            sum(t.expired for t in tallies.values()),
            merged,
            whole_stage=True,
        )
    )
    return rows


def write_run_table(path: str, rows: list[dict]) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CSV_COLUMNS)
        for row in rows:
            writer.writerow([_fmt(row[column]) for column in CSV_COLUMNS])


def render_rows(rows: list[dict]) -> str:
    lines = [
        f"{'run':<8} {'lane':<14} {'offered':>8} {'achieved':>9} "
        f"{'ok':>6} {'fail':>5} {'exp':>5} {'p50ms':>8} {'p95ms':>8} {'p99ms':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row['run']:<8} {row['lane']:<14} {row['offered_rps']:>8.1f} "
            f"{row['achieved_rps']:>9.1f} {row['ok']:>6} {row['failed']:>5} "
            f"{row['expired']:>5} {row['p50_ms']:>8.2f} {row['p95_ms']:>8.2f} "
            f"{row['p99_ms']:>8.2f}"
        )
    return "\n".join(lines)


# ------------------------------------------------------------ entrypoint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--url", default="http://127.0.0.1:8080",
                        help="base URL of the running server; with "
                             "--transport binary, uhd://HOST:PORT (or "
                             "http://HOST:PORT) naming the --binary-port "
                             "endpoint")
    parser.add_argument("--transport", default="http",
                        choices=("http", "binary"),
                        help="wire protocol: keep-alive HTTP or the framed "
                             "binary fast lane (repro.serve.BinaryClient)")
    parser.add_argument("--rps", type=float, default=20.0,
                        help="offered request rate (per second)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds per stage")
    parser.add_argument("--ramp", default="",
                        help="comma-separated rps stages overriding --rps, "
                             "e.g. 5,20,80 (each --duration long)")
    parser.add_argument("--process", default="poisson",
                        choices=("poisson", "uniform", "bursty"),
                        help="arrival process")
    parser.add_argument("--burst-size", type=int, default=8,
                        help="arrivals per burst for --process bursty")
    parser.add_argument("--lanes", default="",
                        help="lane mix 'name:weight,...'; empty = server default")
    parser.add_argument("--rows", type=int, default=1,
                        help="images per request")
    parser.add_argument("--pixels", type=int, default=784,
                        help="pixels per image (must match the served model)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="attach this deadline to every request")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="sender threads (bounds in-flight requests)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request client timeout (seconds)")
    parser.add_argument("--seed", type=int, default=1234,
                        help="arrival-schedule RNG seed")
    parser.add_argument("--dim", type=int, default=256,
                        help="served model's hypervector dim (for energy)")
    parser.add_argument("--no-energy", action="store_true",
                        help="leave the joules_per_request column blank")
    parser.add_argument("--server-pid", type=int, default=None,
                        help="server pid for /proc CPU + RSS sampling")
    parser.add_argument("--csv", default="loadgen_results.csv",
                        help="run-table output path")
    parser.add_argument("--smoke", action="store_true",
                        help="short fixed run; exit non-zero on any failure")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        args.ramp = ""
        args.rps = min(args.rps, 20.0)
        args.duration = min(args.duration, 2.0)
    stages = (
        [float(r) for r in args.ramp.split(",") if r.strip()]
        if args.ramp
        else [args.rps]
    )
    lanes = parse_lanes(args.lanes)
    body = random.Random(args.seed ^ 0xA5A5).randbytes(args.rows * args.pixels)
    joules = None
    if not args.no_energy:
        from repro.eval.energy import uhd_image_energy_fj

        joules = uhd_image_energy_fj(args.dim, args.pixels) * args.rows * 1e-15

    all_rows: list[dict] = []
    total_failed = 0
    for index, rps in enumerate(stages):
        schedule = build_schedule(
            args.process, rps, args.duration, lanes, args.seed + index,
            burst_size=args.burst_size,
        )
        runner = OpenLoopRunner(
            args.url, schedule, body, args.rows, args.concurrency,
            deadline_ms=args.deadline_ms, timeout_s=args.timeout,
            transport=args.transport,
        )
        sampler = ProcSampler(args.server_pid)
        sampler.start()
        actual = runner.run()
        cpu_pct, rss_mb = sampler.finish()
        rows = stage_rows(
            run_name=f"stage{index}",
            process=args.process,
            transport=args.transport,
            offered_rps=rps,
            planned_duration_s=args.duration,
            actual_duration_s=actual,
            tallies=runner.tallies,
            cpu_pct=cpu_pct,
            rss_mb=rss_mb,
            joules_per_request=joules,
        )
        all_rows.extend(rows)
        total_failed += sum(tally.failed for tally in runner.tallies.values())
        for error in runner.errors:
            print(f"  ! {error}", file=sys.stderr)

    write_run_table(args.csv, all_rows)
    print(render_rows(all_rows))
    print(f"run table -> {args.csv}")
    if args.smoke:
        total_ok = sum(
            row["ok"] for row in all_rows if row["lane"] == ALL_LANES
        )
        if total_failed or not total_ok:
            print(
                f"SMOKE FAILED: {total_failed} failed requests, "
                f"{total_ok} succeeded",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
