"""Table I — embedded runtime / memory of both encoders (ARM-class model).

Regenerates the paper's Table I rows (runtime per image, dynamic memory,
code memory at D = 1K and 8K) and reports the headline speedups.
"""

from conftest import publish

from repro.eval import experiments as ex
from repro.eval.tables import render_table


def _rows():
    return ex.table1_embedded(dims=(1024, 8192))


def test_table1_embedded(benchmark):
    rows = benchmark.pedantic(_rows, rounds=3, iterations=1)
    text = render_table(
        ["design", "D", "runtime (s)", "dyn. mem (KB)", "code (KB)",
         "paper runtime", "paper mem"],
        [(r.design, r.dim, r.runtime_s, r.dynamic_memory_kb,
          r.code_memory_kb, r.paper_runtime_s, r.paper_memory_kb)
         for r in rows],
        title="Table I - performance on the ARM-class embedded model",
    )
    by_key = {(r.design, r.dim): r for r in rows}
    for dim in (1024, 8192):
        speedup = (by_key[("baseline", dim)].runtime_s
                   / by_key[("uhd", dim)].runtime_s)
        mem_ratio = (by_key[("baseline", dim)].dynamic_memory_kb
                     / by_key[("uhd", dim)].dynamic_memory_kb)
        text += (f"\nD={dim}: speedup {speedup:.1f}x"
                 f" (paper {43.8 if dim == 1024 else 102.3}x),"
                 f" memory ratio {mem_ratio:.1f}x"
                 f" (paper {10.4 if dim == 1024 else 23.6}x)")
        assert speedup > 10.0
        assert mem_ratio > 5.0
    publish("table1_embedded", text)
