"""Fig. 6 — accuracy monitoring: baseline fluctuation vs deterministic uHD.

(a) the baseline's test accuracy per random hypervector draw (a band of
fluctuations), (b) prior-art quoted points, (c) uHD's single-pass accuracy
per dimension.  The reproduced shape: (a) fluctuates, (c) is one flat
deterministic point per D.
"""

import os

import numpy as np
from conftest import publish

from repro.eval import experiments as ex
from repro.eval.figures import ascii_chart, write_series_csv

_DIM = 1024
_UHD_DIMS = (1024, 2048, 8192) if os.environ.get("REPRO_FULL") == "1" else (1024, 2048)


def _series():
    return ex.fig6a_iteration_series(dim=_DIM)


def test_fig6_accuracy_monitoring(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    uhd = ex.fig6c_uhd_series(dims=_UHD_DIMS)

    lines = ["Fig. 6 - accuracy monitoring (reduced scale)"]
    lines.append("(a) baseline accuracy per random draw:")
    lines.append("    " + ascii_chart(series, label=f"D={_DIM}"))
    spread = max(series) - min(series)
    lines.append(f"    fluctuation spread: {spread:.2f} points "
                 f"(mean {np.mean(series):.2f}%)")
    lines.append("(b) prior art (quoted from the paper):")
    for point in ex.fig6b_prior_art():
        retrain = "w/ retrain" if point.retrained else "w/o retrain"
        lines.append(f"    {point.label}: {point.accuracy_percent:.2f}% "
                     f"@ D={point.dim} ({retrain})")
    lines.append("(c) uHD single-pass accuracy:")
    for dim, acc in uhd.items():
        lines.append(f"    D={dim}: {acc:.2f}%  (paper: "
                     f"{ {1024: 84.44, 2048: 87.04, 8192: 88.41}.get(dim, '-')} )")

    write_series_csv("benchmarks/results/fig6a_series.csv",
                     ["iteration", "accuracy_percent"],
                     list(enumerate(series, start=1)))
    write_series_csv("benchmarks/results/fig6c_series.csv",
                     ["dim", "accuracy_percent"], sorted(uhd.items()))

    # Shape assertions: the baseline band fluctuates; uHD is deterministic
    # (re-running gives the identical value).
    assert spread > 0.0
    again = ex.fig6c_uhd_series(dims=(_UHD_DIMS[0],))
    assert again[_UHD_DIMS[0]] == uhd[_UHD_DIMS[0]]
    publish("fig6_accuracy", "\n".join(lines))
