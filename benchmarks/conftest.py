"""Shared benchmark helpers.

Every benchmark regenerates one table/figure of the paper, prints it, and
writes the rendered text under ``benchmarks/results/`` so EXPERIMENTS.md
can be refreshed from a single run.  Accuracy benches honour
``REPRO_FULL=1`` for paper-leaning sample counts.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
