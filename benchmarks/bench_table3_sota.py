"""Table III — whole-system energy efficiency vs published SOTA.

Our row is computed from the embedded cost model (whole encode pipeline,
baseline over uHD); the seven SOTA rows are quoted from the surveys the
paper cites.  The reproduced claim: this work tops the ranking.
"""

from conftest import publish

from repro.eval import experiments as ex
from repro.eval.tables import render_table


def _rows():
    return ex.table3_sota(dim=1024)


def test_table3_sota(benchmark):
    rows = benchmark.pedantic(_rows, rounds=3, iterations=1)
    text = render_table(
        ["framework", "platform", "energy efficiency (x)"],
        [(r.framework, r.platform, r.energy_efficiency) for r in rows],
        title="Table III - energy efficiency over baseline architectures",
    )
    measured = next(r for r in rows if "measured" in r.framework)
    quoted = [r for r in rows if not r.is_this_work]
    assert all(measured.energy_efficiency > r.energy_efficiency for r in quoted)
    text += (f"\nmeasured this-work ratio: {measured.energy_efficiency:.2f}x "
             f"(paper: 31.83x) - ranks first, as in the paper")
    publish("table3_sota", text)
